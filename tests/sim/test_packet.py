"""Packet and flow-key model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    CONTROL_PRIORITY,
    DATA_PRIORITY,
    FlowKey,
    Packet,
    PacketType,
    PollingFlag,
    pause_quanta_to_ns,
)
from repro.units import gbps


def key(sport=1000, dport=4791):
    return FlowKey("10.0.0.1", "10.0.0.2", sport, dport)


class TestFlowKey:
    def test_equality_and_hash(self):
        assert key() == key()
        assert key(1) != key(2)
        assert len({key(1), key(2), key(1)}) == 2

    def test_stable_hash_is_deterministic(self):
        assert key().stable_hash() == key().stable_hash()

    def test_stable_hash_differs_for_different_flows(self):
        assert key(1).stable_hash() != key(2).stable_hash()

    def test_str(self):
        assert str(key()) == "10.0.0.1:1000->10.0.0.2:4791/17"

    @given(st.integers(min_value=0, max_value=65535))
    def test_stable_hash_fits_32_bits(self, sport):
        assert 0 <= key(sport).stable_hash() < 2**32


class TestConstructors:
    def test_data_packet(self):
        pkt = Packet.data(key(), 1000, seq=3, now=77)
        assert pkt.ptype is PacketType.DATA
        assert pkt.priority == DATA_PRIORITY
        assert pkt.ecn_capable and not pkt.ce_marked
        assert pkt.seq == 3 and pkt.create_time == 77

    def test_last_data_packet(self):
        pkt = Packet.data(key(), 1000, seq=0, now=0, is_last=True)
        assert pkt.is_last

    def test_ack(self):
        pkt = Packet.ack(key(), now=10, echo_time=5, acked_bytes=4000)
        assert pkt.ptype is PacketType.ACK
        assert pkt.priority == CONTROL_PRIORITY
        assert pkt.echo_time == 5 and pkt.acked_bytes == 4000
        assert not pkt.ecn_capable

    def test_cnp(self):
        pkt = Packet.cnp(key(), now=10)
        assert pkt.ptype is PacketType.CNP
        assert pkt.priority == CONTROL_PRIORITY

    def test_pause_frame(self):
        pkt = Packet.pfc(DATA_PRIORITY, quanta=0xFFFF, now=0)
        assert pkt.is_pause and not pkt.is_resume
        assert pkt.pfc_priority == DATA_PRIORITY

    def test_resume_frame(self):
        pkt = Packet.pfc(DATA_PRIORITY, quanta=0, now=0)
        assert pkt.is_resume and not pkt.is_pause

    def test_quanta_range_enforced(self):
        with pytest.raises(ValueError):
            Packet.pfc(3, quanta=0x10000, now=0)

    def test_polling_packet(self):
        pkt = Packet.polling(key(), PollingFlag.VICTIM_PATH, now=9)
        assert pkt.ptype is PacketType.POLLING
        assert pkt.polling_flag is PollingFlag.VICTIM_PATH
        assert pkt.flow == key()

    def test_polling_copy_changes_flag(self):
        pkt = Packet.polling(key(), PollingFlag.VICTIM_PATH, now=9)
        dup = pkt.copy_polling(PollingFlag.BOTH, now=10)
        assert dup.polling_flag is PollingFlag.BOTH
        assert dup.flow == pkt.flow

    def test_repr_variants(self):
        assert "PAUSE" in repr(Packet.pfc(3, 10, 0))
        assert "RESUME" in repr(Packet.pfc(3, 0, 0))
        assert "data" in repr(Packet.data(key(), 1000, 0, 0))
        assert "POLLING" in repr(Packet.polling(key(), PollingFlag.BOTH, 0))


class TestPollingFlags:
    def test_table1_semantics(self):
        assert not PollingFlag.USELESS.traces_victim_path
        assert PollingFlag.VICTIM_PATH.traces_victim_path
        assert not PollingFlag.VICTIM_PATH.traces_pfc
        assert PollingFlag.PFC_CAUSALITY.traces_pfc
        assert not PollingFlag.PFC_CAUSALITY.traces_victim_path
        assert PollingFlag.BOTH.traces_victim_path and PollingFlag.BOTH.traces_pfc

    def test_default_flag_is_victim_path(self):
        # Table 1: 01 is the default.
        assert PollingFlag.VICTIM_PATH.value == 0b01


class TestPauseQuanta:
    def test_known_value(self):
        # 0xFFFF quanta * 512 bit-times at 100 Gbps ~ 335.5 us
        ns = pause_quanta_to_ns(0xFFFF, gbps(100))
        assert ns == pytest.approx(335_544, rel=0.01)

    def test_zero_quanta_is_zero(self):
        assert pause_quanta_to_ns(0, gbps(100)) == 0

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_monotone_in_quanta(self, q):
        bw = gbps(25)
        assert pause_quanta_to_ns(q, bw) <= pause_quanta_to_ns(q + 1, bw)
