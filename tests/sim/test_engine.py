"""Event engine tests: ordering, cancellation, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(10, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: sim.schedule_at(5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1, lambda: sim.schedule(1, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2]


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append("early"))
        sim.schedule(100, lambda: seen.append("late"))
        sim.run(until_ns=50)
        assert seen == ["early"]
        assert sim.now == 50

    def test_boundary_event_included(self):
        sim = Simulator()
        seen = []
        sim.schedule(50, lambda: seen.append("at"))
        sim.run(until_ns=50)
        assert seen == ["at"]

    def test_resume_after_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append("late"))
        sim.run(until_ns=50)
        sim.run(until_ns=200)
        assert seen == ["late"]

    def test_clock_reaches_until_even_when_idle(self):
        sim = Simulator()
        sim.run(until_ns=1234)
        assert sim.now == 1234


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancelled_not_counted(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        sim.schedule(20, lambda: None)
        sim.run()
        assert sim.events_run == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        h.cancel()
        assert sim.peek_next_time() == 20

    def test_peek_empty(self):
        assert Simulator().peek_next_time() is None


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=60))
    def test_same_schedule_same_order(self, delays):
        def run_once():
            sim = Simulator()
            order = []
            for i, d in enumerate(delays):
                sim.schedule(d, lambda i=i: order.append(i))
            sim.run()
            return order

        assert run_once() == run_once()

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=60))
    def test_execution_times_nondecreasing(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
