"""Event engine tests: ordering, cancellation, determinism, and the
slotted-wheel + heap scheduler internals (slot reuse, purging, compaction)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.engine import COMPACT_INTERVAL_EVENTS


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(10, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: sim.schedule_at(5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1, lambda: sim.schedule(1, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2]


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append("early"))
        sim.schedule(100, lambda: seen.append("late"))
        sim.run(until_ns=50)
        assert seen == ["early"]
        assert sim.now == 50

    def test_boundary_event_included(self):
        sim = Simulator()
        seen = []
        sim.schedule(50, lambda: seen.append("at"))
        sim.run(until_ns=50)
        assert seen == ["at"]

    def test_resume_after_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append("late"))
        sim.run(until_ns=50)
        sim.run(until_ns=200)
        assert seen == ["late"]

    def test_clock_reaches_until_even_when_idle(self):
        sim = Simulator()
        sim.run(until_ns=1234)
        assert sim.now == 1234


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancelled_not_counted(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        sim.schedule(20, lambda: None)
        sim.run()
        assert sim.events_run == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        h.cancel()
        assert sim.peek_next_time() == 20

    def test_peek_empty(self):
        assert Simulator().peek_next_time() is None


class TestSlotScheduler:
    """The hybrid wheel/heap internals: shared slots, purging, compaction."""

    def test_same_timestamp_shares_one_slot(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(10, lambda: None)
        assert len(sim._slot_heap) == 1
        assert len(sim._slots[10]) == 5

    def test_same_time_fifo_across_slot_detach(self):
        # Events scheduled *during* a timestamp's execution for that same
        # timestamp open a fresh slot and still run, after the current batch.
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0, lambda: order.append("nested"))

        sim.schedule(10, first)
        sim.schedule(10, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, lambda: seen.append("x"))
        sim.run()
        handle.cancel()  # already fired; must not corrupt counters
        sim.schedule(5, lambda: seen.append("y"))
        sim.run()
        assert seen == ["x", "y"]
        assert sim.events_run == 2

    def test_until_boundary_ignores_dead_head(self):
        # A cancelled entry at the head must not stop run(until_ns) from
        # reaching live events behind it at a later (but in-range) time.
        sim = Simulator()
        seen = []
        dead = sim.schedule(10, lambda: seen.append("dead"))
        sim.schedule(20, lambda: seen.append("live"))
        dead.cancel()
        sim.run(until_ns=20)
        assert seen == ["live"]
        assert sim.events_purged == 1

    def test_until_boundary_dead_slot_beyond_until(self):
        # The head slot is wholly cancelled AND beyond until_ns: the purge
        # happens before the stopping check, the clock still lands on until.
        sim = Simulator()
        dead = sim.schedule(100, lambda: None)
        dead.cancel()
        sim.run(until_ns=50)
        assert sim.now == 50
        assert sim.pending_entries == 0

    def test_cancelled_prefix_of_live_slot_purged_at_boundary(self):
        sim = Simulator()
        seen = []
        dead = sim.schedule(100, lambda: seen.append("dead"))
        sim.schedule(100, lambda: seen.append("live"))
        dead.cancel()
        sim.run(until_ns=50)  # slot beyond until: prefix purged, live kept
        assert sim.pending_entries == 1
        sim.run()
        assert seen == ["live"]

    def test_wheel_heap_crossover_interleaving(self):
        # Dense same-time appends (wheel hits) interleaved with distinct
        # times (heap pushes) must still fire in (time, schedule) order.
        sim = Simulator()
        order = []
        expect = []
        pattern = [10, 30, 10, 20, 30, 10, 40, 20, 10]
        for i, t in enumerate(pattern):
            sim.schedule(t, lambda i=i, t=t: order.append((t, i)))
            expect.append((t, i))
        expect.sort()
        sim.run()
        assert order == expect
        assert sim.events_run == len(pattern)

    def test_compact_drops_cancelled_and_counts(self):
        sim = Simulator()
        keep = [sim.schedule(10 * (i + 1), lambda: None) for i in range(4)]
        for handle in keep[1:3]:
            handle.cancel()
        purged = sim.compact()
        assert purged == 2
        assert sim.events_purged == 2
        assert sim.compactions == 1
        assert sim.pending_entries == 2
        sim.run()
        assert sim.events_run == 2

    def test_compact_whole_dead_slot_rebuilds_heap(self):
        sim = Simulator()
        for handle in [sim.schedule(10, lambda: None) for _ in range(3)]:
            handle.cancel()
        seen = []
        sim.schedule(20, lambda: seen.append(sim.now))
        assert sim.compact() == 3
        assert 10 not in sim._slots
        sim.run()  # the run loop's local heap alias must see the rebuild
        assert seen == [20]

    def test_auto_compaction_triggers(self):
        sim = Simulator()
        n = COMPACT_INTERVAL_EVENTS + 10

        def tick(left):
            if left:
                sim.schedule(1, tick, left - 1)

        tick(n)
        sim.run()
        assert sim.events_run == n
        assert sim.compactions >= 1

    def test_pending_and_peak_counters(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(10 + i, lambda: None)
        assert sim.pending_entries == 5
        assert sim.max_pending_entries == 5
        sim.run()
        assert sim.pending_entries == 0
        assert sim.max_pending_entries == 5

    def test_schedule_with_prebound_args(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, seen.append, "a")
        sim.schedule_at(7, seen.append, "b")
        sim.run()
        assert seen == ["a", "b"]


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=60))
    def test_same_schedule_same_order(self, delays):
        def run_once():
            sim = Simulator()
            order = []
            for i, d in enumerate(delays):
                sim.schedule(d, lambda i=i: order.append(i))
            sim.run()
            return order

        assert run_once() == run_once()

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=60))
    def test_execution_times_nondecreasing(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
