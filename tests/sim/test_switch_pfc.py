"""Switch PFC mechanics: Xoff/Xon, pause propagation, priorities, observers."""

import pytest

from repro.sim import (
    CONTROL_PRIORITY,
    DATA_PRIORITY,
    Network,
    Packet,
    PacketType,
    SimConfig,
    SwitchObserver,
)
from repro.sim.config import PfcConfig
from repro.topology import build_dumbbell, build_line
from repro.units import KB, msec, usec


class Recorder(SwitchObserver):
    def __init__(self):
        self.enqueues = []
        self.dequeues = []
        self.pfc_rx = []
        self.pfc_tx = []

    def on_egress_enqueue(self, sw, t, pkt, eport, iport, qd, qb, paused):
        self.enqueues.append((sw.name, t, pkt, eport, iport, qd, qb, paused))

    def on_egress_dequeue(self, sw, t, pkt, eport):
        self.dequeues.append((sw.name, t, pkt, eport))

    def on_pfc_received(self, sw, t, port, prio, quanta):
        self.pfc_rx.append((sw.name, t, port, prio, quanta))

    def on_pfc_sent(self, sw, t, port, prio, quanta):
        self.pfc_tx.append((sw.name, t, port, prio, quanta))


def incast_net(hosts_per_side=4, config=None):
    topo = build_dumbbell(hosts_per_side=hosts_per_side)
    return Network(topo, config=config)


class TestXoffXon:
    def test_pause_sent_when_xoff_crossed(self):
        net = incast_net()
        rec = Recorder()
        net.add_switch_observer(rec, ["SW1"])
        for j in range(4):
            net.start_flow(net.make_flow(f"HL{j}", "HR0", 200 * KB, usec(1), src_port=10000 + j))
        net.run(msec(2))
        pauses = [e for e in rec.pfc_tx if e[4] > 0]
        assert pauses, "oversubscribed egress must trigger PAUSE toward hosts"

    def test_resume_follows_pause(self):
        net = incast_net()
        rec = Recorder()
        net.add_switch_observer(rec, ["SW1"])
        for j in range(4):
            net.start_flow(net.make_flow(f"HL{j}", "HR0", 200 * KB, usec(1), src_port=10000 + j))
        net.run(msec(3))
        resumes = [e for e in rec.pfc_tx if e[4] == 0]
        assert resumes, "drained ingress must send RESUME"

    def test_no_pfc_below_xoff(self):
        config = SimConfig(pfc=PfcConfig(xoff_bytes=10_000 * KB, xon_bytes=5_000 * KB))
        net = incast_net(config=config)
        for j in range(4):
            net.start_flow(net.make_flow(f"HL{j}", "HR0", 100 * KB, usec(1), src_port=10000 + j))
        net.run(msec(3))
        assert all(s.stats.pause_sent == 0 for s in net.switches.values())

    def test_xon_must_be_below_xoff(self):
        with pytest.raises(ValueError):
            PfcConfig(xoff_bytes=10 * KB, xon_bytes=10 * KB)

    def test_ingress_accounting_returns_to_zero(self):
        net = incast_net()
        flows = [
            net.make_flow(f"HL{j}", "HR0", 150 * KB, usec(1), src_port=10000 + j)
            for j in range(4)
        ]
        for f in flows:
            net.start_flow(f)
        net.run(msec(5))
        assert all(f.completed for f in flows)
        sw = net.switch("SW1")
        for port in sw.ports:
            assert sw.ingress_occupancy(port) == 0


class TestPausePropagation:
    def test_paused_port_stops_transmitting(self, tiny_net):
        net = tiny_net
        sw = net.switch("SW")
        host_a_port = net.topology.attachment_of("A")
        # Pause the switch's egress toward host A directly.
        frame = Packet.pfc(DATA_PRIORITY, 0xFFFF, 0)
        sw.receive(frame, host_a_port.port)
        flow = net.make_flow("B", "A", 50 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(100))
        assert flow.bytes_acked == 0
        assert sw.egress_queue_bytes(host_a_port.port) > 0

    def test_resume_restarts_transmission(self, tiny_net):
        net = tiny_net
        sw = net.switch("SW")
        port = net.topology.attachment_of("A").port
        sw.receive(Packet.pfc(DATA_PRIORITY, 0xFFFF, 0), port)
        flow = net.make_flow("B", "A", 50 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(50))
        sw.receive(Packet.pfc(DATA_PRIORITY, 0, 0), port)
        net.run(msec(1))
        assert flow.completed

    def test_pause_expires_on_its_own(self, tiny_net):
        net = tiny_net
        sw = net.switch("SW")
        port = net.topology.attachment_of("A").port
        sw.receive(Packet.pfc(DATA_PRIORITY, 100, 0), port)  # short pause
        flow = net.make_flow("B", "A", 50 * KB, usec(1))
        net.start_flow(flow)
        net.run(msec(2))
        assert flow.completed, "a non-refreshed pause must lapse"

    def test_control_priority_not_paused(self, tiny_net):
        net = tiny_net
        sw = net.switch("SW")
        port = net.topology.attachment_of("A").port
        sw.receive(Packet.pfc(DATA_PRIORITY, 0xFFFF, 0), port)
        # ACK/CNP-class traffic must flow even while data is paused.
        flow = net.make_flow("A", "B", 10 * KB, usec(1))
        net.start_flow(flow)  # data A->B unaffected; ACKs B->A cross the paused port
        net.run(msec(1))
        assert flow.completed

    def test_cascading_pause_reaches_second_switch(self):
        topo = build_line(num_switches=3, hosts_per_switch=4)
        net = Network(topo)
        # Local senders at SW3 oversubscribe its host port; remote senders
        # keep the inter-switch links loaded so back-pressure must cascade.
        srcs = ["H1_0", "H1_1", "H2_0", "H2_1", "H3_1", "H3_2"]
        for i, s in enumerate(srcs):
            net.start_flow(net.make_flow(s, "H3_0", 400 * KB, usec(5), src_port=11000 + i))
        net.run(msec(4))
        # Congestion at SW3's host port must propagate pauses to SW2 and SW1.
        assert net.switch("SW2").stats.pause_received > 0
        assert net.switch("SW1").stats.pause_received > 0


class TestTelemetryHookContract:
    def test_enqueue_reports_queue_depth_before_insert(self, tiny_net):
        net = tiny_net
        rec = Recorder()
        net.add_switch_observer(rec, ["SW"])
        net.start_flow(net.make_flow("A", "B", 10 * KB, usec(1)))
        net.run(msec(1))
        data = [e for e in rec.enqueues if e[2].ptype is PacketType.DATA]
        assert data[0][5] == 0  # first packet sees an empty queue

    def test_enqueue_reports_ingress_port(self, tiny_net):
        net = tiny_net
        rec = Recorder()
        net.add_switch_observer(rec, ["SW"])
        net.start_flow(net.make_flow("A", "B", 10 * KB, usec(1)))
        net.run(msec(1))
        a_port = net.topology.attachment_of("A").port
        data = [e for e in rec.enqueues if e[2].ptype is PacketType.DATA]
        assert all(e[4] == a_port for e in data)

    def test_dequeue_seen_for_every_enqueue(self, tiny_net):
        net = tiny_net
        rec = Recorder()
        net.add_switch_observer(rec, ["SW"])
        net.start_flow(net.make_flow("A", "B", 20 * KB, usec(1)))
        net.run(msec(2))
        assert len(rec.dequeues) == len(rec.enqueues)

    def test_stats_counters(self, tiny_net):
        net = tiny_net
        net.start_flow(net.make_flow("A", "B", 10 * KB, usec(1)))
        net.run(msec(1))
        stats = net.switch("SW").stats
        assert stats.data_pkts == 10
        assert stats.data_bytes == 10 * KB
        assert stats.rx_pkts >= stats.data_pkts


class TestPriorityScheduling:
    def test_control_transmitted_ahead_of_data(self, tiny_net):
        net = tiny_net
        rec = Recorder()
        net.add_switch_observer(rec, ["SW"])
        flow = net.make_flow("A", "B", 40 * KB, usec(1))
        net.start_flow(flow)
        reverse = net.make_flow("B", "A", 40 * KB, usec(1), src_port=11111)
        net.start_flow(reverse)
        net.run(msec(2))
        # ACKs for the reverse flow share A's egress with data; both finish.
        assert flow.completed and reverse.completed
        prios = {e[2].priority for e in rec.enqueues}
        assert CONTROL_PRIORITY in prios and DATA_PRIORITY in prios
