"""Simulator conservation and invariant tests (property-style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Network, PacketType, SwitchObserver
from repro.topology import build_dumbbell, build_line
from repro.units import KB, msec, usec


class Ledger(SwitchObserver):
    """Counts per-switch enqueues/dequeues for conservation checks."""

    def __init__(self):
        self.enq = {}
        self.deq = {}

    def on_egress_enqueue(self, sw, t, pkt, eport, iport, qd, qb, paused):
        self.enq[sw.name] = self.enq.get(sw.name, 0) + 1

    def on_egress_dequeue(self, sw, t, pkt, eport):
        self.deq[sw.name] = self.deq.get(sw.name, 0) + 1


class TestConservation:
    @settings(max_examples=8, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # src host index
                st.integers(min_value=10, max_value=200),  # size KB
                st.integers(min_value=0, max_value=100),  # start us
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_all_enqueued_packets_eventually_dequeued(self, specs):
        """Lossless fabric: whatever enters a switch leaves it (no deadlock
        topology here, so queues must fully drain)."""
        net = Network(build_dumbbell(hosts_per_side=4))
        ledger = Ledger()
        net.add_switch_observer(ledger)
        for i, (src, size_kb, start_us) in enumerate(specs):
            flow = net.make_flow(
                f"HL{src}", "HR0", size_kb * KB, usec(start_us), src_port=20000 + i
            )
            net.start_flow(flow)
        net.run(msec(30))
        assert ledger.enq == ledger.deq
        for flow in net.flows:
            assert flow.bytes_acked == flow.size

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_ingress_accounting_balances(self, nflows):
        net = Network(build_line(num_switches=3, hosts_per_switch=4))
        for i in range(nflows):
            net.start_flow(
                net.make_flow(f"H1_{i % 4}", f"H3_{i % 4}", 100 * KB, usec(i), src_port=30000 + i)
            )
        net.run(msec(20))
        for sw in net.switches.values():
            for port in sw.ports:
                assert sw.ingress_occupancy(port) == 0
                assert sw.egress_queue_bytes(port) == 0

    def test_pause_resume_pairing(self):
        """Every pausing episode that ends produces a RESUME (or expires);
        sent RESUME count never exceeds sent PAUSE count."""
        net = Network(build_dumbbell(hosts_per_side=4))
        for j in range(4):
            net.start_flow(net.make_flow(f"HL{j}", "HR0", 300 * KB, usec(1), src_port=10 + j))
        net.run(msec(10))
        for sw in net.switches.values():
            assert sw.stats.resume_sent <= sw.stats.pause_sent

    def test_sequence_numbers_contiguous(self):
        net = Network(build_dumbbell(hosts_per_side=1))
        seqs = []

        class SeqSpy(SwitchObserver):
            def on_egress_enqueue(self, sw, t, pkt, e, i, qd, qb, p):
                if pkt.ptype is PacketType.DATA and sw.name == "SW1":
                    seqs.append(pkt.seq)

        net.add_switch_observer(SeqSpy(), ["SW1"])
        net.start_flow(net.make_flow("HL0", "HR0", 50 * KB, 0))
        net.run(msec(2))
        assert seqs == list(range(50))

    def test_no_events_after_quiescence(self):
        """Once all flows complete, the event queue runs dry (no leaks)."""
        net = Network(build_dumbbell(hosts_per_side=2))
        net.start_flow(net.make_flow("HL0", "HR0", 20 * KB, 0))
        net.run(msec(50))
        # Only unfired periodic events may remain; none within 10 more ms
        # should change any flow state.
        acked = [f.bytes_acked for f in net.flows]
        net.run(msec(60))
        assert [f.bytes_acked for f in net.flows] == acked
