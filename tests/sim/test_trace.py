"""Network tracer tests: PFC event recording, queries, export round-trip."""

import io

import pytest

from repro.sim import Network
from repro.sim.trace import NetworkTracer, load_jsonl
from repro.topology import PortRef, build_line
from repro.units import KB, msec, usec


def traced_incast():
    """Multi-hop incast: SW3's host port congests and PFC cascades back, so
    switches both send and receive PAUSE frames."""
    net = Network(build_line(num_switches=3, hosts_per_switch=4))
    tracer = NetworkTracer(net, sample_queue_every=4)
    srcs = ["H1_0", "H1_1", "H2_0", "H2_1", "H3_1", "H3_2"]
    for i, src in enumerate(srcs):
        net.start_flow(net.make_flow(src, "H3_0", 300 * KB, usec(1), src_port=10 + i))
    net.run(msec(5))
    return net, tracer


class TestRecording:
    def test_pfc_events_recorded_both_directions(self):
        net, tracer = traced_incast()
        directions = {e.direction for e in tracer.pfc_events}
        assert directions == {"rx", "tx"}

    def test_pause_and_resume_kinds(self):
        net, tracer = traced_incast()
        kinds = {e.kind for e in tracer.pfc_events}
        assert kinds == {"pause", "resume"}

    def test_events_match_switch_stats(self):
        net, tracer = traced_incast()
        tx_pauses = len([e for e in tracer.pfc_events if e.kind == "pause" and e.direction == "tx"])
        assert tx_pauses == sum(s.stats.pause_sent for s in net.switches.values())

    def test_queue_samples_collected_and_subsampled(self):
        net, tracer = traced_incast()
        assert tracer.queue_samples
        total_data = sum(s.stats.data_pkts for s in net.switches.values())
        assert len(tracer.queue_samples) <= total_data // 2

    def test_no_pfc_no_events(self, tiny_net):
        tracer = NetworkTracer(tiny_net)
        tiny_net.start_flow(tiny_net.make_flow("A", "B", 20 * KB, usec(1)))
        tiny_net.run(msec(1))
        assert tracer.pfc_events == []


class TestQueries:
    def test_paused_intervals_well_formed(self):
        net, tracer = traced_incast()
        # Host-facing ports on SW1 got paused; pick one with events.
        ports = tracer.pause_storm_ports(min_pauses=1)
        assert ports
        intervals = tracer.paused_intervals(ports[0])
        assert intervals
        for start, end in intervals:
            assert end >= start
        # Intervals are disjoint and ordered.
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1

    def test_total_paused_positive_under_congestion(self):
        net, tracer = traced_incast()
        port = tracer.pause_storm_ports(min_pauses=1)[0]
        assert tracer.total_paused_ns(port) > 0

    def test_max_queue_depth(self):
        net, tracer = traced_incast()
        host_port = net.topology.attachment_of("H3_0")  # the bottleneck
        assert tracer.max_queue_depth(host_port) > 0

    def test_unpaused_port_has_no_intervals(self):
        net, tracer = traced_incast()
        assert tracer.paused_intervals(PortRef("SW2", 99)) == []

    def test_pause_filter_by_switch(self):
        net, tracer = traced_incast()
        assert all(e.switch == "SW1" for e in tracer.pause_events("SW1"))


class TestExport:
    def test_jsonl_round_trip(self):
        net, tracer = traced_incast()
        buffer = io.StringIO()
        count = tracer.export_jsonl(buffer)
        assert count == len(tracer.pfc_events) + len(tracer.queue_samples)
        buffer.seek(0)
        events, samples = load_jsonl(buffer)
        assert events == tracer.pfc_events
        assert samples == tracer.queue_samples

    def test_load_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            load_jsonl(['{"type": "mystery"}'])

    def test_load_skips_blank_lines(self):
        events, samples = load_jsonl(["", "  ", ""])
        assert events == [] and samples == []
