"""Fuzz determinism differentials.

The campaign is specified to be a pure function of its seed: the same
(seed, genome) must yield byte-identical verdicts, coverage fingerprints
and retained corpora whether evaluation runs in-process, across a fork
pool (``jobs``), or on the sharded simulator (``shards``).
"""

import dataclasses
import json

from repro.experiments import run_scenario
from repro.experiments.runner import ScenarioSpec
from repro.experiments.shardrun import run_scenario_sharded
from repro.fuzz import (
    FuzzConfig,
    ScenarioGenome,
    observe,
    run_fuzz,
)


def _snapshot(report):
    """Everything a campaign decides, as comparable bytes."""
    return json.dumps([
        {
            "genome": json.loads(e.genome.to_json()),
            "fingerprint": e.fingerprint,
            "interest": list(e.interest),
            "verdict": e.observation.verdict,
            "diagnosis": e.diagnosis_text,
        }
        for e in report.retained
    ], sort_keys=True)


class TestJobsInvariance:
    def test_jobs_2_matches_serial(self):
        serial = run_fuzz(FuzzConfig(budget=9, seed=5, jobs=1, generation=2))
        pooled = run_fuzz(FuzzConfig(budget=9, seed=5, jobs=2, generation=2))
        assert serial.evaluated == pooled.evaluated == 9
        assert _snapshot(serial) == _snapshot(pooled)


class TestShardInvariance:
    def test_shards_2_matches_serial(self):
        genome = dataclasses.replace(
            ScenarioGenome(), storm_us=2500, storm_start_us=80
        ).normalized()
        spec = ScenarioSpec("genome", genome_json=genome.to_json())
        config = FuzzConfig().run_config()

        serial = run_scenario(spec.build(), config)
        sharded = run_scenario_sharded(
            spec, dataclasses.replace(config, shards=2)
        )

        obs_serial, obs_sharded = observe(serial), observe(sharded)
        assert obs_serial == obs_sharded
        assert obs_serial.fingerprint() == obs_sharded.fingerprint()
        assert (
            serial.diagnosis().describe() == sharded.diagnosis().describe()
        )
        assert serial.fault_incidents == sharded.fault_incidents


class TestSpecRebuild:
    def test_genome_spec_round_trips_through_build(self):
        genome = ScenarioGenome().normalized()
        spec = ScenarioSpec("genome", genome_json=genome.to_json())
        a, b = spec.build(), spec.build()
        assert a.name == b.name == genome.build().name
        assert [f.key for f in a.network.flows] == [
            f.key for f in b.network.flows
        ]

    def test_named_builder_specs_unaffected(self):
        spec = ScenarioSpec("pfc-storm", seed=2)
        assert spec.genome_json is None
        assert spec.name == "pfc-storm[seed=2]"
        assert spec.build().name == "pfc-storm-seed2"
