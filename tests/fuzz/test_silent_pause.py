"""Triage of the fuzzer's ``silent-pause`` corpus finds.

Both checked-in reproducers (``scenarios/silent-pause-*.json``) hit the
same blind spot: the fabric is visibly unhealthy — the monitor's rule
engine raises alerts — yet no victim's RTT ever crosses the detection
threshold, so the Hawkeye pipeline never triggers and the diagnoser
returns **no verdict**.  The continuous monitor is the only line of
defense for this class (see DESIGN.md, "Known limitations").

These tests pin the triaged behaviour per entry so a change to either
side of the gap — the detection threshold starts firing, or the monitor
goes quiet — shows up as an explicit regression, not silent drift.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_corpus, replay_entry

CORPUS_DIR = Path(__file__).resolve().parents[2] / "scenarios"

# entry name -> alert categories the monitor must raise while the
# diagnoser stays silent (from the triage of each find).
TRIAGED = {
    "silent-pause-87b44e7770": {"rtt_inflation", "throughput_collapse"},
    "silent-pause-d73f26f279": {
        "pause_backpressure", "pfc_storm", "throughput_collapse"
    },
}

ENTRIES = {
    e.name: e
    for e in load_corpus(str(CORPUS_DIR))
    if "silent-pause" in e.interest
}


def test_both_triaged_finds_are_checked_in():
    assert set(TRIAGED) <= set(ENTRIES), (
        f"missing corpus entries: {set(TRIAGED) - set(ENTRIES)}"
    )


@pytest.mark.parametrize("name", sorted(TRIAGED))
def test_monitor_alerts_while_diagnoser_is_silent(name):
    entry = ENTRIES[name]
    ok, evaluation = replay_entry(entry)
    assert ok, f"{name}: fingerprint drifted on replay"
    obs = evaluation.observation

    # The gap, both sides pinned:
    # 1. the detection threshold sleeps through the anomaly — no victim
    #    complaint, hence no provenance walk and no verdict;
    assert obs.triggered is False
    assert obs.verdict == "no-verdict"
    assert obs.confidence == "none"

    # 2. the continuous monitor *does* see it — the triaged alert
    #    categories, including at least one congestion/pause signal.
    assert set(obs.alert_categories) == TRIAGED[name]

    # That combination is exactly the "silent-pause" interest definition.
    assert "silent-pause" in evaluation.interest


@pytest.mark.parametrize("name", sorted(TRIAGED))
def test_finds_are_distinct_blind_spots(name):
    """d73f26f279 shows outright PFC-storm alerts with no trigger;
    87b44e7770 inflates RTT below threshold with no pause category at
    all.  They must stay distinct coverage points."""
    entry = ENTRIES[name]
    other = next(n for n in TRIAGED if n != name)
    assert entry.fingerprint != ENTRIES[other].fingerprint
    assert set(entry.observation.alert_categories) == TRIAGED[name]
