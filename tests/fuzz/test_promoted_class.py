"""The promoted fuzzer find: contention-masked PFC storm.

The coverage-guided fuzzer surfaced a scenario outside the paper's five
classes — a host injecting PAUSE frames while an incast converges on its
own port — and it was promoted to a first-class anomaly: registered
builder, Table-2-style signature, diagnoser verdict, and monitor alert
category.  These pins are its acceptance contract.
"""

import pytest

from repro.core import AnomalyType, RootCauseKind
from repro.experiments import RunConfig, diagnosis_correct, run_scenario
from repro.monitor import ANOMALY_ALERT_CATEGORIES, MonitorConfig
from repro.workloads import SCENARIO_BUILDERS, contention_masked_storm_scenario


class TestScenarioBuilder:
    def test_registered(self):
        assert "contention-masked-storm" in SCENARIO_BUILDERS

    @pytest.mark.parametrize("seed", [1, 2])
    def test_truth(self, seed):
        sc = contention_masked_storm_scenario(seed=seed)
        assert sc.truth.anomaly is AnomalyType.CONTENTION_MASKED_STORM
        assert sc.truth.injecting_host == "H0_0_0"
        assert sc.truth.culprit_flows, "masking incast flows are culprits too"
        assert sc.victims


class TestDiagnosis:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_diagnosed_as_masked_storm(self, seed):
        sc = contention_masked_storm_scenario(seed=seed)
        result = run_scenario(sc, RunConfig())
        d = result.diagnosis()
        assert d is not None
        primary = d.primary()
        assert primary.anomaly is AnomalyType.CONTENTION_MASKED_STORM
        assert primary.root_cause is RootCauseKind.HOST_PFC_INJECTION
        assert primary.injecting_source == "H0_0_0"
        # Both halves of the compound: the injector is named *and* the
        # masking contention flows are attributed.
        assert primary.culprit_flows
        assert diagnosis_correct(d, sc.truth)

    def test_blamed_flows_are_the_masking_bursts(self):
        sc = contention_masked_storm_scenario(seed=1)
        result = run_scenario(sc, RunConfig())
        primary = result.diagnosis().primary()
        assert set(primary.culprit_keys()) <= set(sc.truth.culprit_flows)


class TestMonitorIntegration:
    def test_alert_category_mapping_exists(self):
        assert "contention-masked-pfc-storm" in ANOMALY_ALERT_CATEGORIES

    def test_monitored_run_raises_early_warning(self):
        sc = contention_masked_storm_scenario(seed=1)
        result = run_scenario(sc, RunConfig(monitor=MonitorConfig()))
        incidents = result.monitor.timeline.incidents
        assert incidents
        for incident in incidents:
            assert incident.anomaly == "contention-masked-pfc-storm"
            expected = ANOMALY_ALERT_CATEGORIES[incident.anomaly]
            assert any(a.category in expected for a in incident.alerts)
            assert incident.early_warning
