"""Genome property suite: serialization identity and mutation validity.

Hypothesis drives genomes *outside* the valid region on purpose — the
fuzzer's soundness rests on ``normalized()`` projecting any field
assignment into a buildable scenario, and on the JSON codec being an
exact inverse of itself.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import (
    FLOAT_RANGES,
    INT_RANGES,
    TOPOLOGY_KINDS,
    ScenarioGenome,
    crossover,
    mutate,
    random_genome,
)


def genomes():
    """Arbitrary genomes, deliberately overshooting every valid range."""
    kwargs = {}
    for name, (lo, hi) in INT_RANGES.items():
        span = max(1, hi - lo)
        kwargs[name] = st.integers(lo - span, hi + span)
    for name, (lo, hi) in FLOAT_RANGES.items():
        span = hi - lo
        kwargs[name] = st.floats(
            lo - span, hi + span, allow_nan=False, allow_infinity=False
        )
    kwargs["topology"] = st.sampled_from(TOPOLOGY_KINDS + ("bogus",))
    kwargs["cbd_rewire"] = st.booleans()
    kwargs["circulate"] = st.booleans()
    return st.builds(ScenarioGenome, **kwargs)


class TestRoundTrip:
    @given(genomes())
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_identity(self, genome):
        assert ScenarioGenome.from_json(genome.to_json()) == genome

    @given(genomes())
    @settings(max_examples=100, deadline=None)
    def test_short_id_stable(self, genome):
        assert genome.short_id() == genome.short_id()
        clone = ScenarioGenome.from_json(genome.to_json())
        assert clone.short_id() == genome.short_id()

    def test_unknown_field_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown genome fields"):
            ScenarioGenome.from_json('{"nope": 1}')


class TestNormalization:
    @given(genomes())
    @settings(max_examples=100, deadline=None)
    def test_normalized_is_valid_and_idempotent(self, genome):
        g = genome.normalized()
        assert g.normalized() == g
        for name, (lo, hi) in INT_RANGES.items():
            assert lo <= getattr(g, name) <= hi
        for name, (lo, hi) in FLOAT_RANGES.items():
            assert lo <= getattr(g, name) <= hi
        assert g.topology in TOPOLOGY_KINDS
        assert g.k % 2 == 0
        assert g.xon_kb < g.xoff_kb
        assert g.kmin_kb < g.kmax_kb
        assert g.incast_degree <= max(0, g.host_pool() - 3)
        if g.topology != "ring":
            assert not g.cbd_rewire and not g.circulate
        if g.circulate:
            assert g.cbd_rewire


class TestMutantsBuildRunnableScenarios:
    """Every mutation/crossover product must yield a live scenario: a
    connected fabric (Network construction BFS-routes every host) with at
    least the victim flow scheduled."""

    @given(genomes(), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_mutant_builds(self, genome, rng_seed):
        rng = random.Random(rng_seed)
        mutant = mutate(genome.normalized(), rng)
        scenario = mutant.build()
        assert scenario.victims
        assert scenario.network.flows
        assert scenario.duration_ns > 0

    @given(genomes(), genomes(), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_crossover_builds(self, a, b, rng_seed):
        rng = random.Random(rng_seed)
        child = crossover(a.normalized(), b.normalized(), rng)
        scenario = child.build()
        assert scenario.victims
        assert scenario.network.flows

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_random_genome_builds(self, rng_seed):
        genome = random_genome(random.Random(rng_seed))
        assert genome.normalized() == genome
        scenario = genome.build()
        assert scenario.victims

    def test_build_is_deterministic(self):
        genome = random_genome(random.Random(11))
        a, b = genome.build(), genome.build()
        assert a.name == b.name
        assert len(a.network.flows) == len(b.network.flows)
        assert [f.key for f in a.network.flows] == [f.key for f in b.network.flows]
        assert [f.start_time for f in a.network.flows] == [
            f.start_time for f in b.network.flows
        ]
