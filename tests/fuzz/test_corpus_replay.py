"""Replay harness for the checked-in fuzz corpus (``scenarios/``).

Every minimized reproducer the fuzzer promoted into the repository must
replay byte-identically: same coverage fingerprint, same observation,
same diagnosis text.  A drift here means a behaviour change in the
simulator, diagnoser, or monitor reached a discovered anomaly — exactly
the regressions the corpus exists to catch.
"""

from pathlib import Path

import pytest

from repro.fuzz import PAPER_CLASSES, load_corpus, replay_entry

CORPUS_DIR = Path(__file__).resolve().parents[2] / "scenarios"
ENTRIES = load_corpus(str(CORPUS_DIR))


def test_corpus_is_checked_in():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


def test_corpus_contains_a_beyond_paper_class_find():
    promoted = [
        e for e in ENTRIES
        if "beyond-paper-class" in e.interest
        and e.observation is not None
        and e.observation.verdict == "contention-masked-pfc-storm"
    ]
    assert promoted, (
        "the corpus must keep the minimized reproducer of the promoted "
        "contention-masked-pfc-storm find"
    )
    for entry in promoted:
        assert entry.observation.verdict not in PAPER_CLASSES


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.name for e in ENTRIES]
)
def test_entry_replays_byte_identically(entry):
    ok, evaluation = replay_entry(entry)
    assert ok, (
        f"{entry.name}: fingerprint drifted\n"
        f"  expected {entry.fingerprint}\n"
        f"  got      {evaluation.fingerprint}\n"
        f"  verdict  {evaluation.observation.verdict}"
    )
    if entry.observation is not None:
        assert evaluation.observation == entry.observation
    assert tuple(evaluation.interest) == tuple(entry.interest)
