"""Minimizer contract: fingerprint preservation, idempotence, bounded work."""

import dataclasses

from repro.fuzz import ScenarioGenome, evaluate_genome, minimize


def _fake_eval(genome):
    """A stand-in coverage map: the finding needs a storm AND an incast."""
    if genome.storm_us > 0 and genome.incast_degree > 0:
        return "hit"
    return "miss"


NOISY = dataclasses.replace(
    ScenarioGenome(),
    storm_us=2500, storm_start_us=400, incast_degree=7,
    burst_kb=900, victim_kb=2800, pulses=4, jitter_us=9,
    flow_tail=6.0, background_load=0.1, duration_us=5000,
).normalized()


class TestContract:
    def test_preserves_fingerprint(self):
        minimized = minimize(NOISY, "hit", evaluate=_fake_eval)
        assert _fake_eval(minimized) == "hit"

    def test_shrinks_irrelevant_genes_to_defaults(self):
        minimized = minimize(NOISY, "hit", evaluate=_fake_eval)
        default = ScenarioGenome()
        for name in ("burst_kb", "victim_kb", "pulses", "jitter_us",
                     "flow_tail", "background_load", "duration_us"):
            assert getattr(minimized, name) == getattr(default, name), name
        # The load-bearing genes survive (nonzero), reduced to the floor
        # the fingerprint tolerates.
        assert minimized.storm_us > 0
        assert minimized.incast_degree > 0

    def test_idempotent(self):
        once = minimize(NOISY, "hit", evaluate=_fake_eval)
        twice = minimize(once, "hit", evaluate=_fake_eval)
        assert twice == once

    def test_never_escapes_the_fingerprint(self):
        # A fingerprint the genome does not have: nothing to preserve, so
        # nothing may change.
        assert minimize(NOISY, "unreachable", evaluate=_fake_eval) == NOISY

    def test_respects_evaluation_budget(self):
        calls = []

        def counting_eval(genome):
            calls.append(genome)
            return _fake_eval(genome)

        minimize(NOISY, "hit", evaluate=counting_eval, max_evaluations=5)
        assert len(calls) <= 5

    def test_pinned_genes_untouched(self):
        shifted = dataclasses.replace(NOISY, seed=77, topology="line").normalized()
        minimized = minimize(shifted, "hit", evaluate=_fake_eval)
        assert minimized.seed == 77
        assert minimized.topology == "line"


class TestRealPipeline:
    def test_partial_minimize_preserves_real_fingerprint(self):
        """Even a budget-capped pass returns a genome whose *simulated*
        coverage fingerprint is intact."""
        genome = dataclasses.replace(
            ScenarioGenome(), burst_kb=700, jitter_us=8
        ).normalized()
        target = evaluate_genome(genome).fingerprint
        minimized = minimize(genome, target, max_evaluations=6)
        assert evaluate_genome(minimized).fingerprint == target
