"""Fixed-seed fuzz smoke: the campaign machinery end to end, fast.

A tiny deterministic budget exercises seeding, coverage retention,
interest classification, and the CLI path with corpus persistence.  The
seed probes alone already contain a beyond-paper-class find, so even the
shortest campaign must surface one.
"""

import json

from repro.cli import main
from repro.fuzz import FuzzConfig, load_corpus, run_fuzz, seed_genomes


class TestSeedProbes:
    def test_probe_deck_is_deterministic_and_diverse(self):
        a, b = seed_genomes(), seed_genomes()
        assert [g.to_json() for g in a] == [g.to_json() for g in b]
        assert len({g.topology for g in a}) >= 4, "probes span topologies"


class TestShortCampaign:
    def test_finds_beyond_paper_class(self):
        report = run_fuzz(FuzzConfig(budget=7, seed=1))
        assert report.evaluated == 7
        assert report.retained, "seed probes must yield coverage"
        kinds = {k for e in report.findings for k in e.interest}
        assert "beyond-paper-class" in kinds
        verdicts = {e.observation.verdict for e in report.findings}
        assert "contention-masked-pfc-storm" in verdicts

    def test_fingerprints_unique_across_retained(self):
        report = run_fuzz(FuzzConfig(budget=7, seed=1))
        prints = [e.fingerprint for e in report.retained]
        assert len(prints) == len(set(prints))


class TestFuzzCli:
    def test_writes_corpus_and_exits_zero(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        rc = main(["fuzz", "--budget", "3", "--seed", "1",
                   "--corpus", str(corpus)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenarios evaluated" in out
        entries = load_corpus(str(corpus))
        assert entries
        for entry in entries:
            payload = json.loads((corpus / f"{entry.name}.json").read_text())
            assert payload["fingerprint"] == entry.fingerprint
            assert payload["provenance"]["seed"] == 1
