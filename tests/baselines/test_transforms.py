"""Visibility transform tests."""

import pytest

from repro.baselines import (
    SystemKind,
    apply_visibility,
    strip_flow_telemetry,
    strip_pfc_visibility,
    strip_port_causality,
)
from repro.sim import FlowKey
from repro.telemetry import EpochData, FlowEntry, PortEntry, SwitchReport


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


@pytest.fixture
def full_report():
    rep = SwitchReport(switch="SW", collect_time=50)
    epoch = EpochData(epoch_number=3)
    epoch.flows[(key(1), 2)] = FlowEntry(
        key(1), 2, pkt_count=10, paused_count=4, qdepth_sum_pkts=50, byte_count=10_000
    )
    epoch.ports[2] = PortEntry(2, pkt_count=10, paused_count=4, qdepth_sum_pkts=50)
    epoch.meters[(1, 2)] = 10_000
    rep.epochs = [epoch]
    rep.port_status = {2: 1234}
    return rep


class TestStripFlowTelemetry:
    def test_flows_dropped_ports_kept(self, full_report):
        out = strip_flow_telemetry(full_report)
        assert out.num_flow_entries() == 0
        assert out.agg_ports()[2].paused_count == 4
        assert out.agg_meters() == {(1, 2): 10_000}
        assert out.port_status == {2: 1234}

    def test_original_untouched(self, full_report):
        strip_flow_telemetry(full_report)
        assert full_report.num_flow_entries() == 1


class TestStripPortCausality:
    def test_ports_and_meters_dropped(self, full_report):
        out = strip_port_causality(full_report)
        assert out.agg_ports() == {}
        assert out.agg_meters() == {}
        assert out.port_status == {}
        assert out.agg_flows()[(key(1), 2)].paused_count == 4


class TestStripPfcVisibility:
    def test_paused_counters_zeroed(self, full_report):
        out = strip_pfc_visibility(full_report)
        assert out.agg_flows()[(key(1), 2)].paused_count == 0
        assert out.agg_ports()[2].paused_count == 0
        assert out.agg_meters() == {}
        assert out.port_status == {}

    def test_traffic_counters_preserved(self, full_report):
        out = strip_pfc_visibility(full_report)
        assert out.agg_flows()[(key(1), 2)].pkt_count == 10
        assert out.agg_ports()[2].qdepth_sum_pkts == 50


class TestApplyVisibility:
    def test_hawkeye_and_polling_unchanged(self, full_report):
        for kind in (SystemKind.HAWKEYE, SystemKind.FULL_POLLING, SystemKind.VICTIM_ONLY):
            assert apply_visibility(kind, full_report) is full_report

    def test_port_only(self, full_report):
        assert apply_visibility(SystemKind.PORT_ONLY, full_report).num_flow_entries() == 0

    def test_flow_only(self, full_report):
        assert apply_visibility(SystemKind.FLOW_ONLY, full_report).agg_meters() == {}

    def test_pfc_blind(self, full_report):
        for kind in (SystemKind.SPIDERMON, SystemKind.NETSIGHT):
            out = apply_visibility(kind, full_report)
            assert out.agg_ports()[2].paused_count == 0
