"""PFC watchdog baseline tests: the §2.3 transient-blindness claim."""

import pytest

from repro.baselines import PfcWatchdog, WatchdogConfig
from repro.sim import Network, NetworkTracer
from repro.topology import build_line
from repro.units import KB, msec, usec


def stormy_line(storm_ns, duration_ns, watchdog_interval_ns):
    """A line fabric with a PFC storm of the given duration, observed by
    both the watchdog (sampled) and the tracer (ground truth)."""
    net = Network(build_line(num_switches=3, hosts_per_switch=2))
    tracer = NetworkTracer(net)
    watchdog = PfcWatchdog(net, WatchdogConfig(poll_interval_ns=watchdog_interval_ns))
    watchdog.start()
    net.start_flow(net.make_flow("H1_0", "H3_0", 3_000 * KB, usec(1), src_port=1))
    net.sim.schedule(usec(50), lambda: net.hosts["H3_0"].start_pfc_injection(storm_ns))
    net.run(duration_ns)
    return net, tracer, watchdog


class TestWatchdogMechanics:
    def test_polls_on_schedule(self, tiny_net):
        watchdog = PfcWatchdog(tiny_net, WatchdogConfig(poll_interval_ns=usec(100)))
        watchdog.start()
        tiny_net.run(msec(1))
        assert watchdog.polls == 10

    def test_stop_halts_polling(self, tiny_net):
        watchdog = PfcWatchdog(tiny_net, WatchdogConfig(poll_interval_ns=usec(100)))
        watchdog.start()
        tiny_net.run(usec(500))
        watchdog.stop()
        tiny_net.run(msec(2))
        assert watchdog.polls == 5

    def test_start_idempotent(self, tiny_net):
        watchdog = PfcWatchdog(tiny_net, WatchdogConfig(poll_interval_ns=usec(100)))
        watchdog.start()
        watchdog.start()
        tiny_net.run(usec(500))
        assert watchdog.polls == 5

    def test_no_pauses_no_observations(self, tiny_net):
        watchdog = PfcWatchdog(tiny_net, WatchdogConfig(poll_interval_ns=usec(100)))
        watchdog.start()
        tiny_net.start_flow(tiny_net.make_flow("A", "B", 20 * KB, usec(1)))
        tiny_net.run(msec(1))
        assert watchdog.observations == []


class TestTransientBlindness:
    """§2.3: coarse polling catches long storms but misses transient PFC."""

    def test_long_storm_detected(self):
        net, tracer, watchdog = stormy_line(
            storm_ns=msec(3), duration_ns=msec(4), watchdog_interval_ns=msec(1)
        )
        storm_port = net.topology.attachment_of("H3_0")
        assert storm_port in watchdog.paused_ports_seen()

    def test_transient_pause_missed_at_industrial_period(self):
        # A 300 us episode against a 1 ms poll that first fires at t=1 ms.
        net, tracer, watchdog = stormy_line(
            storm_ns=usec(300), duration_ns=msec(4), watchdog_interval_ns=msec(1)
        )
        storm_port = net.topology.attachment_of("H3_0")
        intervals = tracer.paused_intervals(storm_port)
        assert intervals, "the tracer must see the transient episode"
        assert not watchdog.detected_episode(intervals, storm_port)

    def test_coverage_improves_with_faster_polling(self):
        def coverage(interval_ns):
            net, tracer, watchdog = stormy_line(
                storm_ns=usec(300), duration_ns=msec(4), watchdog_interval_ns=interval_ns
            )
            truth = {}
            for name, sw in net.switches.items():
                for port_no in sw.ports:
                    from repro.topology import PortRef

                    ref = PortRef(name, port_no)
                    spans = tracer.paused_intervals(ref)
                    if spans:
                        truth[ref] = spans
            return watchdog.coverage_against(truth)

        assert coverage(usec(50)) >= coverage(msec(1))

    def test_coverage_trivially_perfect_without_episodes(self, tiny_net):
        watchdog = PfcWatchdog(tiny_net)
        assert watchdog.coverage_against({}) == 1.0
