"""Baseline system property and overhead-model tests."""

import pytest

from repro.baselines import (
    NETSIGHT_POSTCARD_BYTES,
    SPIDERMON_FLOW_RECORD_BYTES,
    SPIDERMON_HEADER_BYTES,
    SystemKind,
    bandwidth_overhead_bytes,
    processing_overhead_bytes,
)
from repro.sim import FlowKey
from repro.telemetry import EpochData, FlowEntry, SwitchReport


def report_with_flows(n):
    rep = SwitchReport(switch="SW", collect_time=0)
    epoch = EpochData(epoch_number=0)
    for i in range(n):
        k = FlowKey("10.0.0.1", "10.0.0.2", i, 4791)
        epoch.flows[(k, 1)] = FlowEntry(k, 1, pkt_count=5, byte_count=5000)
    rep.epochs = [epoch]
    return rep


class TestSystemProperties:
    def test_pfc_tracing_systems(self):
        assert SystemKind.HAWKEYE.traces_pfc
        assert SystemKind.PORT_ONLY.traces_pfc
        assert not SystemKind.VICTIM_ONLY.traces_pfc
        assert not SystemKind.SPIDERMON.traces_pfc

    def test_collection_scope(self):
        assert SystemKind.FULL_POLLING.collects_everywhere
        assert SystemKind.NETSIGHT.collects_everywhere
        assert not SystemKind.HAWKEYE.collects_everywhere

    def test_polling_usage(self):
        assert SystemKind.HAWKEYE.uses_polling_packets
        assert not SystemKind.FULL_POLLING.uses_polling_packets
        assert not SystemKind.NETSIGHT.uses_polling_packets

    def test_pfc_blindness(self):
        assert SystemKind.SPIDERMON.pfc_blind and SystemKind.NETSIGHT.pfc_blind
        assert not SystemKind.HAWKEYE.pfc_blind


class TestProcessingOverhead:
    def test_netsight_scales_with_packet_hops(self):
        a = processing_overhead_bytes(SystemKind.NETSIGHT, {}, data_pkt_hops=100)
        b = processing_overhead_bytes(SystemKind.NETSIGHT, {}, data_pkt_hops=200)
        assert b == 2 * a == 200 * NETSIGHT_POSTCARD_BYTES

    def test_spidermon_uses_36_bytes_per_flow(self):
        reports = {"SW": report_with_flows(7)}
        got = processing_overhead_bytes(SystemKind.SPIDERMON, reports, 10**6)
        assert got == 7 * SPIDERMON_FLOW_RECORD_BYTES

    def test_hawkeye_uses_report_payload(self):
        reports = {"SW": report_with_flows(3)}
        got = processing_overhead_bytes(SystemKind.HAWKEYE, reports, 10**6)
        assert got == reports["SW"].payload_bytes()

    def test_netsight_dwarfs_hawkeye(self):
        """Fig 9a ordering: per-packet postcards cost orders more."""
        reports = {"SW": report_with_flows(50)}
        hawkeye = processing_overhead_bytes(SystemKind.HAWKEYE, reports, 0)
        netsight = processing_overhead_bytes(SystemKind.NETSIGHT, {}, 10**6)
        assert netsight > 100 * hawkeye


class TestBandwidthOverhead:
    def test_full_polling_is_free(self):
        assert bandwidth_overhead_bytes(SystemKind.FULL_POLLING, 10, 64, 10**6, 10**6) == 0

    def test_hawkeye_counts_polling_packets(self):
        assert bandwidth_overhead_bytes(SystemKind.HAWKEYE, 12, 64, 10**6, 10**6) == 768

    def test_spidermon_counts_per_packet_header(self):
        got = bandwidth_overhead_bytes(SystemKind.SPIDERMON, 0, 64, 1000, 5000)
        assert got == 1000 * SPIDERMON_HEADER_BYTES

    def test_netsight_counts_postcards_per_hop(self):
        got = bandwidth_overhead_bytes(SystemKind.NETSIGHT, 0, 64, 1000, 5000)
        assert got == 5000 * NETSIGHT_POSTCARD_BYTES

    def test_fig9b_ordering(self):
        """Hawkeye's trigger-only polling beats per-packet schemes."""
        pkts, hops = 100_000, 400_000
        hawkeye = bandwidth_overhead_bytes(SystemKind.HAWKEYE, 20, 64, pkts, hops)
        spider = bandwidth_overhead_bytes(SystemKind.SPIDERMON, 0, 64, pkts, hops)
        netsight = bandwidth_overhead_bytes(SystemKind.NETSIGHT, 0, 64, pkts, hops)
        assert hawkeye < spider < netsight
