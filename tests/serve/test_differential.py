"""The service's binding contract: served episodes == batch runs, bytes.

``repro serve`` advances the fabric in small time slices on an executor
thread; ``repro run`` advances it in one shot.  Both ride
:class:`~repro.experiments.runner.FabricSession`, and the simulator
executes events in timestamp order regardless of how ``run(until_ns)``
partitions the clock — so episode ``k`` at seed ``s`` must produce
verdicts *byte-identical* to ``run_scenario`` at seed ``s + k``.  This
test pins that equivalence end to end, through the live service.
"""

import asyncio

import pytest

from tests.serve.conftest import wait_episode_complete

from repro.experiments import run_scenario
from repro.serve import ServeClient, ServeConfig
from repro.workloads import SCENARIO_BUILDERS

SCENARIOS = ["pfc-storm", "incast-backpressure"]


def _batch(scenario_name, seed):
    scenario = SCENARIO_BUILDERS[scenario_name](seed=seed)
    return run_scenario(scenario, ServeConfig().run_config())


def _verdict_fingerprint(result):
    """Everything a consumer of a diagnosis could observe, stringified."""
    outcomes = []
    for outcome in result.outcomes:
        outcomes.append({
            "victim": str(outcome.victim),
            "trigger_ns": outcome.trigger.time_ns
            if outcome.trigger is not None else None,
            "diagnosis": outcome.diagnosis.describe()
            if outcome.diagnosis is not None else None,
            "confidence": outcome.diagnosis.confidence
            if outcome.diagnosis is not None else None,
            "completeness": outcome.diagnosis.completeness
            if outcome.diagnosis is not None else None,
        })
    monitor = {}
    if result.monitor is not None:
        monitor = {
            "alerts": [a.to_dict() for a in result.monitor.alerts],
            "incidents": [
                i.to_dict() for i in result.monitor.timeline.incidents
            ],
        }
    return {"outcomes": outcomes, "monitor": monitor}


class TestServedEpisodeEqualsBatchRun:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_episode0_verdicts_byte_identical(self, scenario, serving):
        batch = _verdict_fingerprint(_batch(scenario, seed=7))

        async def main():
            # A deliberately awkward slice size (not a divisor of the
            # duration) so the slicing itself is exercised.
            async with serving(
                scenario=scenario, seed=7, episodes=1, slice_us=333.0
            ) as (service, path):
                await wait_episode_complete(service)
                return _verdict_fingerprint(service.last_result)

        served = asyncio.run(main())
        assert served == batch

    def test_episode1_is_batch_at_next_seed(self, serving):
        batch = _verdict_fingerprint(_batch("pfc-storm", seed=8))

        async def main():
            async with serving(
                scenario="pfc-storm", seed=7, episodes=2, slice_us=500.0
            ) as (service, path):
                while service.episodes_completed < 2:
                    await asyncio.sleep(0.02)
                return _verdict_fingerprint(service.last_result)

        served = asyncio.run(main())
        assert served == batch

    def test_query_diagnosis_matches_batch_text(self, serving):
        batch = _batch("pfc-storm", seed=7)
        primary = batch.primary_outcome()
        assert primary is not None

        async def main():
            async with serving(
                scenario="pfc-storm", seed=7, episodes=1, slice_us=333.0
            ) as (service, path):
                await wait_episode_complete(service)
                client = await ServeClient.connect(unix_path=path, tenant="t")
                reply = await client.query(victim=str(primary.victim))
                await client.close()
                return reply

        reply = asyncio.run(main())
        assert reply["status"] == "diagnosed"
        assert reply["diagnosis"] == primary.diagnosis.describe()
        assert reply["confidence"] == primary.diagnosis.confidence
        assert reply["trigger_ns"] == primary.trigger.time_ns

    def test_mid_episode_query_does_not_perturb_final_verdict(self, serving):
        """Queries are pure reads: hammering the service mid-episode must
        leave the finished episode byte-identical to the batch run."""
        batch = _verdict_fingerprint(_batch("pfc-storm", seed=7))

        async def main():
            async with serving(
                scenario="pfc-storm", seed=7, episodes=1, slice_us=333.0
            ) as (service, path):
                client = await ServeClient.connect(unix_path=path, tenant="t")
                while not service._episode_finished:
                    await client.query()
                    await asyncio.sleep(0.01)
                await client.close()
                return _verdict_fingerprint(service.last_result)

        served = asyncio.run(main())
        assert served == batch
