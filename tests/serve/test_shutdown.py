"""Clean shutdown under load: SIGTERM a real serve process with a swarm
attached and verify every stream gets a goodbye and nothing leaks.

This is the one serve test that uses a subprocess — signal delivery and
process-exit hygiene can't be faked in-process.  The in-process
counterpart (executor-thread leak check) lives in test_service.py.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve import ServeClient

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

SUBSCRIBERS = 20
QUERIES = 50


def _spawn_serve(sock_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "pfc-storm",
            "--unix", str(sock_path), "--seed", "3", "--slice-us", "500",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


def _wait_for_socket(sock_path, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while not os.path.exists(sock_path):
        if time.monotonic() > deadline:
            raise TimeoutError("serve socket never appeared")
        time.sleep(0.05)


class TestSigtermSwarm:
    def test_sigterm_clean_shutdown_with_swarm_attached(self, tmp_path):
        sock_path = str(tmp_path / "serve.sock")
        proc = _spawn_serve(sock_path)
        try:
            _wait_for_socket(sock_path)

            async def swarm():
                subscribers = []
                for i in range(SUBSCRIBERS):
                    client = await ServeClient.connect(
                        unix_path=sock_path, tenant=f"sub-{i % 4}"
                    )
                    reply = await client.subscribe()
                    assert reply["type"] == "subscribed"
                    subscribers.append(client)

                querier = await ServeClient.connect(
                    unix_path=sock_path, tenant="querier"
                )
                statuses = {"ok": 0, "rejected": 0, "error": 0}
                for _ in range(QUERIES):
                    reply = await querier.query()
                    if reply.get("ok"):
                        statuses["ok"] += 1
                    elif reply.get("type") == "rejected":
                        statuses["rejected"] += 1
                    else:
                        statuses["error"] += 1
                # Load shedding is allowed; protocol errors are not.
                assert statuses["error"] == 0
                assert statuses["ok"] >= 1

                proc.send_signal(signal.SIGTERM)

                # Every subscriber stream must end with a terminal
                # shutdown event — that is the clean-shutdown contract.
                goodbyes = 0
                for client in subscribers:
                    while True:
                        event = await client.next_event(timeout=30.0)
                        if event["event"] == "shutdown":
                            goodbyes += 1
                            break
                assert goodbyes == SUBSCRIBERS

                for client in subscribers:
                    await client.close()
                await querier.close()

            asyncio.run(swarm())

            stdout, stderr = "", ""
            try:
                stdout, stderr = proc.communicate(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                stdout, stderr = proc.communicate()
                raise AssertionError(
                    "serve did not exit after SIGTERM\n"
                    f"stdout: {stdout}\nstderr: {stderr}"
                )
            assert proc.returncode == 0, (
                f"serve exited {proc.returncode}\n"
                f"stdout: {stdout}\nstderr: {stderr}"
            )
            # The final line only prints after stop() has joined the
            # executor and closed every socket.
            assert "shut down cleanly" in stdout
            assert "Traceback" not in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_sigint_also_shuts_down_cleanly(self, tmp_path):
        sock_path = str(tmp_path / "serve.sock")
        proc = _spawn_serve(sock_path)
        try:
            _wait_for_socket(sock_path)
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=30.0)
            assert proc.returncode == 0, f"stderr: {stderr}"
            assert "shut down cleanly" in stdout
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
