"""Prometheus exposition-format correctness, validated through a scrape.

A Prometheus server rejects (or silently mangles) expositions that skip
``# HELP``/``# TYPE`` headers, use illegal metric names, or leave label
values unescaped.  These tests parse the text the way a scraper would:
every sample line must belong to an announced family, every name must be
legal, and escaped label values must round-trip.
"""

import asyncio
import re

from tests.serve.conftest import wait_episode_complete

from repro.monitor.export import (
    _prom_label,
    _sanitize_name,
    registry_prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve import http_get

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^({_NAME})(?:\{{(.*)\}})? (-?(?:[0-9.eE+-]+|nan|inf))$", re.IGNORECASE
)
_LABEL = re.compile(rf'({_NAME})="((?:[^"\\]|\\.)*)"(?:,|$)')


def _unescape(value):
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def validate_exposition(text):
    """Parse one exposition; returns {family: (type, [sample names])}.

    Raises AssertionError on anything a scraper would choke on.
    """
    families = {}
    helped = set()
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in families, f"family {name} announced twice"
            assert kind in ("counter", "gauge", "summary", "histogram",
                            "untyped"), f"bad type {kind!r}"
            assert name in helped, f"# TYPE {name} with no # HELP"
            families[name] = (kind, [])
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        sample_name, labels, _value = match.groups()
        base = sample_name
        for suffix in ("_sum", "_count", "_bucket"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
        assert base in families, f"sample {sample_name} has no # TYPE"
        assert base == current, (
            f"sample {sample_name} outside its family block"
        )
        if labels:
            consumed = sum(
                len(m.group(0)) for m in _LABEL.finditer(labels)
            )
            assert consumed == len(labels), f"bad label syntax: {labels!r}"
        families[base][1].append(sample_name)
    # Header-only families (announced, zero samples) are legal exposition;
    # no non-empty assertion here.
    return families


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert _prom_label('plain') == 'plain'
        assert _prom_label('a"b') == 'a\\"b'
        assert _prom_label("a\\b") == "a\\\\b"
        assert _prom_label("a\nb") == "a\\nb"

    def test_escaping_round_trips(self):
        hostile = 'sw"1\\P\n2'
        assert _unescape(_prom_label(hostile)) == hostile

    def test_hostile_value_yields_parseable_exposition(self):
        registry = MetricsRegistry()
        registry.inc('serve.tenant.evil"team\\x.queries')
        text = registry_prometheus_text(registry)
        validate_exposition(text)

    def test_name_sanitization(self):
        assert _sanitize_name("serve.queries.accepted") == \
            "serve_queries_accepted"
        assert re.fullmatch(_NAME, _sanitize_name("9weird metric-name!"))


class TestRegistryExposition:
    def test_counters_gauges_summaries(self):
        registry = MetricsRegistry()
        registry.inc("serve.queries.accepted", 3)
        registry.gauge("serve.queue.depth").set(2.0)
        hist = registry.histogram("serve.query.wall_s")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        families = validate_exposition(registry_prometheus_text(registry))
        assert families["repro_serve_queries_accepted"][0] == "counter"
        assert families["repro_serve_queue_depth"][0] == "gauge"
        kind, samples = families["repro_serve_query_wall_s"]
        assert kind == "summary"
        assert "repro_serve_query_wall_s_sum" in samples
        assert "repro_serve_query_wall_s_count" in samples

    def test_quantile_labels_present(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        text = registry_prometheus_text(registry)
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'quantile="{quantile}"' in text


class TestServeScrape:
    def test_live_scrape_is_valid_exposition(self, serving):
        async def main():
            async with serving() as (service, path):
                await wait_episode_complete(service)
                loop = asyncio.get_running_loop()
                status, headers, body = await loop.run_in_executor(
                    None, lambda: http_get("/metrics", unix_path=path)
                )
                return status, headers, body

        status, headers, body = asyncio.run(main())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        families = validate_exposition(body)
        # Monitor series and serve self-metrics both present, all typed.
        assert any(n.startswith("repro_monitor_") for n in families)
        assert any(n.startswith("repro_serve_") for n in families)
        assert "repro_monitor_alerts_total" in families
        # Every monitor series family carries a real HELP string.
        for line in body.splitlines():
            if line.startswith("# HELP "):
                assert len(line.split(" ", 3)[3].strip()) > 0
