"""Wire-protocol unit tests: framing, validation, response vocabulary."""

import json

import pytest

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    error,
    event,
    ok,
    parse_request,
    rejected,
)


class TestEncode:
    def test_one_compact_line(self):
        line = encode({"op": "ping", "id": 1})
        assert line.endswith(b"\n")
        assert b" " not in line  # compact separators
        assert json.loads(line) == {"op": "ping", "id": 1}

    def test_roundtrip_through_parse(self):
        line = encode({"op": "query", "id": "q-1", "victim": "f1"})
        assert parse_request(line.strip()) == {
            "op": "query", "id": "q-1", "victim": "f1",
        }


class TestParseRequest:
    def test_valid_ops(self):
        for op in ("hello", "subscribe", "unsubscribe", "query", "stats",
                   "ping"):
            assert parse_request(json.dumps({"op": op}).encode())["op"] == op

    @pytest.mark.parametrize("line,code", [
        (b"not json at all", "bad-json"),
        (b"[1,2,3]", "bad-request"),
        (b'"just a string"', "bad-request"),
        (b'{"op": "launch-missiles"}', "unknown-op"),
        (b'{"no": "op"}', "unknown-op"),
        (b'{"op": "ping", "id": [1]}', "bad-id"),
        (b'{"op": "hello", "tenant": ""}', "bad-tenant"),
        (b'{"op": "hello", "tenant": 7}', "bad-tenant"),
        (b'{"op": "query", "victim": 9}', "bad-victim"),
    ])
    def test_malformed(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == code

    def test_oversized_line(self):
        line = json.dumps({"op": "ping", "pad": "x" * MAX_LINE_BYTES}).encode()
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == "line-too-long"

    def test_id_types(self):
        assert parse_request(b'{"op": "ping", "id": 3}')["id"] == 3
        assert parse_request(b'{"op": "ping", "id": "a"}')["id"] == "a"


class TestResponses:
    def test_ok_echoes_id_and_fields(self):
        message = ok("result", 7, victim="f1")
        assert message == {
            "ok": True, "type": "result", "id": 7, "victim": "f1",
        }

    def test_error_shape(self):
        message = error("bad-json", "nope", request_id="r")
        assert message["ok"] is False
        assert message["type"] == "error"
        assert message["error"] == "bad-json"
        assert message["id"] == "r"

    def test_rejected_carries_retry_hint(self):
        message = rejected("rate-limit", 1, retry_after_s=0.25)
        assert message["ok"] is False
        assert message["type"] == "rejected"
        assert message["reason"] == "rate-limit"
        assert message["retry_after_s"] == 0.25

    def test_rejected_omits_zero_hint(self):
        assert "retry_after_s" not in rejected("overload", 1)

    def test_event_carries_clock_and_seq(self):
        message = event("alert", 123.5, 9, category="pfc_storm")
        assert message["type"] == "event"
        assert message["event"] == "alert"
        assert message["ts"] == 123.5
        assert message["seq"] == 9
        assert message["category"] == "pfc_storm"
