"""Admission control units: token buckets, capacity, explicit shedding."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=3.0, now_s=0.0)
        assert all(bucket.take(0.0) for _ in range(3))
        assert not bucket.take(0.0)
        # Half a second refills one token at 2/s.
        assert bucket.take(0.5)
        assert not bucket.take(0.5)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2.0, now_s=0.0)
        bucket._refill(1e6)
        assert bucket.tokens == 2.0

    def test_retry_after_is_deficit_over_rate(self):
        bucket = TokenBucket(rate_per_s=4.0, burst=1.0, now_s=0.0)
        assert bucket.take(0.0)
        assert bucket.retry_after_s(0.0) == pytest.approx(0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.0)


class TestAdmissionController:
    def _controller(self, **kwargs):
        clock = FakeClock()
        registry = MetricsRegistry()
        kwargs.setdefault("max_inflight", 2)
        kwargs.setdefault("max_queue", 1)
        kwargs.setdefault("tenant_rate_per_s", 1000.0)
        kwargs.setdefault("tenant_burst", 1000.0)
        controller = AdmissionController(
            metrics=registry, clock=clock, **kwargs
        )
        return controller, clock, registry

    def test_admit_release_cycle(self):
        controller, _, _ = self._controller()
        assert controller.admit("a") == (None, 0.0)
        assert controller.inflight == 1
        controller.release()
        assert controller.inflight == 0

    def test_overload_beyond_capacity(self):
        controller, _, registry = self._controller(max_inflight=1, max_queue=1)
        assert controller.admit("a")[0] is None
        assert controller.admit("a")[0] is None
        reason, retry = controller.admit("a")
        assert reason == "overload"
        assert retry == 0.0
        counters = registry.to_dict()["counters"]
        assert counters["serve.queries.rejected.overload"] == 1
        assert counters["serve.queries.accepted"] == 2

    def test_rate_limit_checked_before_capacity(self):
        # A throttled tenant must not consume queue slots.
        controller, clock, registry = self._controller(
            tenant_rate_per_s=1.0, tenant_burst=1.0
        )
        assert controller.admit("noisy")[0] is None
        reason, retry = controller.admit("noisy")
        assert reason == "rate-limit"
        assert retry > 0.0
        # Capacity untouched by the rejection: other tenants still admitted.
        assert controller.inflight == 1
        assert controller.admit("quiet")[0] is None
        counters = registry.to_dict()["counters"]
        assert counters["serve.tenant.noisy.rejected"] == 1
        assert counters["serve.tenant.quiet.queries"] == 1

    def test_rate_limit_recovers_with_time(self):
        controller, clock, _ = self._controller(
            tenant_rate_per_s=2.0, tenant_burst=1.0
        )
        assert controller.admit("a")[0] is None
        assert controller.admit("a")[0] == "rate-limit"
        clock.now += 0.5  # one token refilled
        assert controller.admit("a")[0] is None

    def test_unbalanced_release_raises(self):
        controller, _, _ = self._controller()
        with pytest.raises(RuntimeError):
            controller.release()

    def test_counters_document(self):
        controller, _, _ = self._controller()
        controller.admit("a")
        doc = controller.counters()
        assert doc["accepted"] == 1
        assert doc["inflight"] == 1
        assert doc["rejected_rate_limit"] == 0
        assert doc["rejected_overload"] == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
