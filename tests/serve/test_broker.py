"""StreamBroker units: fan-out, bounded queues, eviction-with-notice."""

import asyncio

from repro.obs.metrics import MetricsRegistry
from repro.serve import StreamBroker
from repro.serve.broker import TERMINAL_EVENTS


def _drain(sub):
    events = []
    while True:
        try:
            events.append(sub.queue.get_nowait())
        except asyncio.QueueEmpty:
            return events


class TestFanOut:
    def test_every_subscriber_sees_every_event(self):
        async def main():
            broker = StreamBroker()
            subs = [broker.subscribe(f"t{i}") for i in range(3)]
            broker.publish("alert", category="pfc_storm")
            broker.publish("incident", victim="f1")
            for sub in subs:
                kinds = [e["event"] for e in _drain(sub)]
                assert kinds == ["alert", "incident"]

        asyncio.run(main())

    def test_seq_is_global_and_monotonic(self):
        async def main():
            broker = StreamBroker()
            sub = broker.subscribe("a")
            for _ in range(5):
                broker.publish("alert")
            seqs = [e["seq"] for e in _drain(sub)]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == 5

        asyncio.run(main())

    def test_unsubscribe_stops_delivery(self):
        async def main():
            broker = StreamBroker()
            sub = broker.subscribe("a")
            broker.unsubscribe(sub)
            broker.publish("alert")
            assert _drain(sub) == []
            assert broker.active == 0

        asyncio.run(main())


class TestEviction:
    def test_slow_consumer_evicted_with_notice(self):
        async def main():
            registry = MetricsRegistry()
            broker = StreamBroker(registry)
            slow = broker.subscribe("slow", maxsize=2)
            fast = broker.subscribe("fast", maxsize=64)
            for i in range(6):
                broker.publish("alert", n=i)
            # The slow queue holds exactly maxsize events and the LAST one
            # is the terminal eviction notice — dropped events are counted,
            # never silent.
            events = _drain(slow)
            assert len(events) == 2
            assert events[-1]["event"] == "evicted"
            assert events[-1]["reason"] == "slow-consumer"
            assert events[-1]["dropped"] >= 1
            assert slow.closed
            assert broker.active == 1  # the fast one lives on
            assert len(_drain(fast)) == 6
            counters = registry.to_dict()["counters"]
            assert counters["serve.stream.evicted"] == 1

        asyncio.run(main())

    def test_evicted_subscription_gets_nothing_more(self):
        async def main():
            broker = StreamBroker()
            slow = broker.subscribe("slow", maxsize=1)
            for i in range(10):
                broker.publish("alert", n=i)
            events = _drain(slow)
            assert [e["event"] for e in events] == ["evicted"]

        asyncio.run(main())


class TestShutdown:
    def test_close_all_notifies_every_stream(self):
        async def main():
            broker = StreamBroker()
            subs = [broker.subscribe(f"t{i}", maxsize=4) for i in range(4)]
            # One subscriber is completely full: the notice must still land.
            full = subs[0]
            for _ in range(4):
                full.queue.put_nowait({"event": "alert", "seq": 0, "ts": 0})
            notified = broker.close_all("shutdown", reason="test")
            assert notified == 4
            assert broker.active == 0
            for sub in subs:
                events = _drain(sub)
                assert events[-1]["event"] == "shutdown"
                assert events[-1]["reason"] == "test"

        asyncio.run(main())

    def test_terminal_kinds_cover_shutdown_paths(self):
        assert "evicted" in TERMINAL_EVENTS
        assert "shutdown" in TERMINAL_EVENTS
        assert "unsubscribed" in TERMINAL_EVENTS
