"""Service integration on a unix socket: protocol, queries, HTTP, lifecycle.

Every test runs a real :class:`DiagnosisService` in-process and talks to
it exactly like an external client would — through the socket.
"""

import asyncio
import json
import threading

from tests.serve.conftest import wait_episode_complete

from repro.serve import ServeClient, http_get
from repro.serve.protocol import encode


class TestJsonProtocol:
    def test_hello_binds_tenant_and_lists_victims(self, serving):
        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path)
                reply = await client.hello("team-a")
                assert reply["ok"] is True
                assert reply["tenant"] == "team-a"
                assert reply["protocol"] == 1
                assert reply["victims"]  # pfc-storm has victims
                await client.close()

        asyncio.run(main())

    def test_ping_and_stats(self, serving):
        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path)
                pong = await client.ping()
                assert pong["type"] == "pong"
                stats = await client.stats()
                doc = stats["stats"]
                assert doc["scenario"] == "pfc-storm"
                assert doc["connections"] == 1
                assert "admission" in doc and "stream" in doc
                await client.close()

        asyncio.run(main())

    def test_malformed_requests_get_errors_not_disconnects(self, serving):
        async def main():
            async with serving() as (service, path):
                reader, writer = await asyncio.open_unix_connection(path)
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["type"] == "error"
                assert reply["error"] == "bad-json"
                writer.write(encode({"op": "warp-drive"}))
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["error"] == "unknown-op"
                # The connection survived both errors.
                writer.write(encode({"op": "ping", "id": 1}))
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["type"] == "pong" and reply["id"] == 1
                writer.close()
                await writer.wait_closed()

        asyncio.run(main())

    def test_protocol_errors_counted(self, serving):
        async def main():
            async with serving() as (service, path):
                reader, writer = await asyncio.open_unix_connection(path)
                writer.write(b"{broken\n")
                await writer.drain()
                await reader.readline()
                counters = service.registry.to_dict()["counters"]
                assert counters["serve.protocol.errors"] == 1
                writer.close()
                await writer.wait_closed()

        asyncio.run(main())


class TestStreaming:
    def test_subscriber_sees_feed_in_seq_order(self, serving):
        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path, tenant="t")
                reply = await client.subscribe()
                assert reply["type"] == "subscribed"
                await wait_episode_complete(service)
                events = []
                try:
                    while True:
                        events.append(await client.next_event(timeout=1.0))
                except asyncio.TimeoutError:
                    pass
                kinds = {e["event"] for e in events}
                # pfc-storm raises monitor alerts and records an incident.
                assert "alert" in kinds
                assert "incident" in kinds
                assert "episode-end" in kinds
                seqs = [e["seq"] for e in events]
                assert seqs == sorted(seqs)
                await client.close()

        asyncio.run(main())

    def test_double_subscribe_rejected(self, serving):
        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path)
                await client.subscribe()
                reply = await client.subscribe()
                assert reply["type"] == "error"
                assert reply["error"] == "already-subscribed"
                await client.close()

        asyncio.run(main())

    def test_unsubscribe_ends_stream_with_terminal_event(self, serving):
        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path)
                await client.subscribe()
                reply = await client.unsubscribe()
                assert reply["type"] == "unsubscribed"
                # The stream's last event is the terminal notice.
                terminal = None
                try:
                    while True:
                        terminal = await client.next_event(timeout=1.0)
                        if terminal["event"] == "unsubscribed":
                            break
                except asyncio.TimeoutError:
                    pass
                assert terminal is not None
                assert terminal["event"] == "unsubscribed"
                assert service.broker.active == 0
                await client.close()

        asyncio.run(main())

    def test_slow_consumer_evicted_with_notice(self, serving):
        async def main():
            async with serving(sub_queue=2) as (service, path):
                reader, writer = await asyncio.open_unix_connection(path)
                writer.write(encode({"op": "subscribe", "id": 1}))
                await writer.drain()
                await reader.readline()  # subscribed ack
                # Never read another byte: the forwarder blocks on the
                # transport's high-water mark, the bounded queue fills and
                # the broker evicts.  Publish enough to overflow both.
                for n in range(5000):
                    service.broker.publish("alert", n=n)
                    if service.broker.active == 0:
                        break
                    if n % 100 == 0:
                        await asyncio.sleep(0)  # let the forwarder run
                assert service.broker.active == 0
                counters = service.registry.to_dict()["counters"]
                assert counters["serve.stream.evicted"] == 1
                # Now drain the socket: the stream ends with the notice.
                terminal = None
                while terminal is None:
                    line = await asyncio.wait_for(reader.readline(), 10.0)
                    assert line, "stream ended without an eviction notice"
                    message = json.loads(line)
                    if message.get("event") == "evicted":
                        terminal = message
                assert terminal["reason"] == "slow-consumer"
                assert terminal["dropped"] >= 1
                writer.close()
                await writer.wait_closed()

        asyncio.run(main())


class TestQueries:
    def test_query_returns_diagnosis_after_trigger(self, serving):
        async def main():
            async with serving() as (service, path):
                await wait_episode_complete(service)
                client = await ServeClient.connect(unix_path=path, tenant="t")
                reply = await client.query()
                assert reply["ok"] is True
                assert reply["status"] == "diagnosed"
                assert reply["anomaly"] == "pfc-storm"
                assert reply["confidence"] == "full"
                assert "pfc-storm" in reply["diagnosis"]
                assert reply["trigger_ns"] > 0
                await client.close()

        asyncio.run(main())

    def test_query_unknown_victim(self, serving):
        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path)
                reply = await client.query(victim="10.9.9.9:1->10.9.9.8:2/17")
                assert reply["ok"] is True
                assert reply["status"] == "unknown-victim"
                assert reply["victims"]  # tells the caller what exists
                await client.close()

        asyncio.run(main())

    def test_rate_limited_tenant_gets_explicit_rejection(self, serving):
        async def main():
            async with serving(
                tenant_rate_per_s=0.001, tenant_burst=1.0
            ) as (service, path):
                client = await ServeClient.connect(unix_path=path, tenant="t")
                first = await client.query()
                assert first["type"] != "rejected"
                second = await client.query()
                assert second["ok"] is False
                assert second["type"] == "rejected"
                assert second["reason"] == "rate-limit"
                assert second["retry_after_s"] > 0
                # Another tenant is unaffected.
                other = await ServeClient.connect(
                    unix_path=path, tenant="other"
                )
                reply = await other.query()
                assert reply["type"] != "rejected"
                await client.close()
                await other.close()

        asyncio.run(main())


class TestHttpEndpoints:
    def _get(self, path, sock):
        return http_get(path, unix_path=sock)

    def test_healthz(self, serving):
        async def main():
            async with serving() as (service, path):
                loop = asyncio.get_running_loop()
                status, _, body = await loop.run_in_executor(
                    None, self._get, "/healthz", path
                )
                assert status == 200
                assert body == "ok\n"

        asyncio.run(main())

    def test_servicez_is_json_with_counters(self, serving):
        async def main():
            async with serving() as (service, path):
                loop = asyncio.get_running_loop()
                status, headers, body = await loop.run_in_executor(
                    None, self._get, "/servicez", path
                )
                assert status == 200
                assert headers["content-type"] == "application/json"
                doc = json.loads(body)
                assert doc["scenario"] == "pfc-storm"
                assert doc["protocol"] == 1
                assert doc["uptime_s"] >= 0
                assert "admission" in doc
                assert "tenants" in doc

        asyncio.run(main())

    def test_metrics_jsonl_html_and_404(self, serving):
        async def main():
            async with serving() as (service, path):
                await wait_episode_complete(service)
                loop = asyncio.get_running_loop()
                status, headers, body = await loop.run_in_executor(
                    None, self._get, "/metrics", path
                )
                assert status == 200
                assert body.startswith("# HELP")
                assert "repro_serve_" in body
                status, _, body = await loop.run_in_executor(
                    None, self._get, "/jsonl", path
                )
                assert status == 200
                assert all(
                    json.loads(line) for line in body.splitlines() if line
                )
                status, _, body = await loop.run_in_executor(
                    None, self._get, "/html", path
                )
                assert status == 200
                assert body.lstrip().startswith("<!DOCTYPE html>")
                status, _, _ = await loop.run_in_executor(
                    None, self._get, "/nope", path
                )
                assert status == 404

        asyncio.run(main())


class TestLifecycle:
    def test_stop_leaves_no_threads_behind(self, serving):
        before = {t.name for t in threading.enumerate()}

        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path)
                await client.subscribe()
                # stop() runs in the fixture's finally; close the client
                # here so its reader task dies inside the loop.
                await asyncio.sleep(0.1)
                await client.close()

        asyncio.run(main())
        after = {t.name for t in threading.enumerate()}
        leaked = {
            name for name in after - before if name.startswith("repro-serve")
        }
        assert not leaked, f"leaked executor threads: {leaked}"

    def test_stop_is_idempotent_and_notifies_streams(self, serving):
        async def main():
            async with serving() as (service, path):
                client = await ServeClient.connect(unix_path=path)
                await client.subscribe()
                await service.stop(reason="test")
                await service.stop(reason="again")  # second stop: no-op
                terminal = None
                try:
                    while True:
                        terminal = await client.next_event(timeout=2.0)
                        if terminal["event"] == "shutdown":
                            break
                except asyncio.TimeoutError:
                    pass
                assert terminal is not None
                assert terminal["event"] == "shutdown"
                assert terminal["reason"] == "test"
                await client.close()

        asyncio.run(main())

    def test_multi_episode_reseeds(self, serving):
        # Episode 0's episode-start predates any subscriber; the stream
        # shows both episode-ends and episode 1's reseeded start.
        async def main():
            async with serving(episodes=2, slice_us=1000.0) as (service, path):
                client = await ServeClient.connect(unix_path=path)
                await client.subscribe()
                ends, start1 = [], None
                while len(ends) < 2:
                    event = await client.next_event(timeout=60.0)
                    if event["event"] == "episode-end":
                        ends.append(event)
                    elif event["event"] == "episode-start":
                        start1 = event
                assert [e["episode"] for e in ends] == [0, 1]
                assert start1 is not None
                assert start1["episode"] == 1
                assert start1["seed"] == service.config.seed + 1
                assert ends[1]["seed"] == ends[0]["seed"] + 1
                assert service.episodes_completed == 2
                await client.close()

        asyncio.run(main())
