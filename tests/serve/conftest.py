"""Shared plumbing for the serve tests: an in-process service fixture.

Everything runs on a unix socket under ``tmp_path`` — no ports, no
subprocesses (except the SIGTERM test, which needs a real process to
signal).  The environment has no pytest-asyncio, so each test drives its
own loop with ``asyncio.run``.
"""

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.serve import DiagnosisService, ServeConfig


@pytest.fixture
def serving(tmp_path):
    """An async context manager factory: ``async with serving(...)``.

    Yields ``(service, socket_path)`` with the service already listening
    and episode 0 live; stops the service (idempotently) on exit.
    """

    @asynccontextmanager
    async def _serving(**overrides):
        overrides.setdefault("scenario", "pfc-storm")
        overrides.setdefault("episodes", 1)
        overrides.setdefault("slice_us", 500.0)
        config = ServeConfig(**overrides)
        service = DiagnosisService(config)
        path = str(tmp_path / "serve.sock")
        await service.start(unix_path=path)
        try:
            yield service, path
        finally:
            await service.stop()

    return _serving


async def wait_episode_complete(service, timeout_s=60.0):
    """Poll until the live episode has been finished (batch epilogue ran)."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not service._episode_finished:
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("episode did not complete in time")
        await asyncio.sleep(0.02)
