"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "incast-backpressure" in out
        assert "pfc-storm" in out


class TestRun:
    def test_run_storm_correct(self, capsys):
        rc = main(["run", "pfc-storm", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pfc-storm" in out
        assert "CORRECT" in out

    def test_run_with_baseline_system(self, capsys):
        rc = main(["run", "pfc-storm", "--system", "spidermon"])
        out = capsys.readouterr().out
        assert rc != 0  # SpiderMon cannot diagnose a storm
        assert "system   : spidermon" in out

    def test_run_writes_dot(self, tmp_path, capsys):
        dot = tmp_path / "graph.dot"
        rc = main(["run", "incast-backpressure", "--dot", str(dot)])
        assert rc == 0
        assert dot.read_text().startswith("digraph")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_threshold_flag(self, capsys):
        rc = main(["run", "normal-contention", "--threshold", "2.0"])
        assert rc == 0
