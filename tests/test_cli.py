"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "incast-backpressure" in out
        assert "pfc-storm" in out


class TestRun:
    def test_run_storm_correct(self, capsys):
        rc = main(["run", "pfc-storm", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pfc-storm" in out
        assert "CORRECT" in out

    def test_run_with_baseline_system(self, capsys):
        rc = main(["run", "pfc-storm", "--system", "spidermon"])
        out = capsys.readouterr().out
        assert rc != 0  # SpiderMon cannot diagnose a storm
        assert "system   : spidermon" in out

    def test_run_writes_dot(self, tmp_path, capsys):
        dot = tmp_path / "graph.dot"
        rc = main(["run", "incast-backpressure", "--dot", str(dot)])
        assert rc == 0
        assert dot.read_text().startswith("digraph")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_threshold_flag(self, capsys):
        rc = main(["run", "normal-contention", "--threshold", "2.0"])
        assert rc == 0


class TestArgumentValidation:
    """Non-positive numeric knobs die with an argparse error, not a
    downstream traceback."""

    @pytest.mark.parametrize("argv", [
        ["run", "pfc-storm", "--threshold", "0"],
        ["run", "pfc-storm", "--threshold", "-1.5"],
        ["run", "pfc-storm", "--epoch-us", "0"],
        ["run", "pfc-storm", "--epoch-us", "-10"],
        ["sweep", "pfc-storm", "--seeds", "0"],
        ["sweep", "pfc-storm", "--seeds", "-2"],
        ["sweep", "pfc-storm", "--jobs", "0"],
        ["sweep", "pfc-storm", "--jobs", "-1"],
        ["sweep", "pfc-storm", "--epochs-us", "0"],
        ["sweep", "pfc-storm", "--thresholds", "-3"],
        ["chaos", "--loss-rates", "1.5"],
        ["chaos", "--loss-rates", "-0.1"],
        ["fuzz", "--budget", "0"],
        ["fuzz", "--budget", "-5"],
        ["fuzz", "--jobs", "0"],
        ["fuzz", "--jobs", "-1"],
        ["fuzz", "--generation", "0"],
    ])
    def test_non_positive_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "must be" in err or "invalid" in err

    @pytest.mark.parametrize("argv", [
        ["sweep", "pfc-storm", "--seeds", "two"],
        ["run", "pfc-storm", "--threshold", "high"],
        ["fuzz", "--seed", "many"],
    ])
    def test_non_numeric_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)


class TestFuzzValidation:
    """``fuzz`` knobs fail fast: 32-bit seed range, sane corpus paths."""

    @pytest.mark.parametrize("value", ["-1", str(2**32), str(2**40)])
    def test_seed_out_of_range_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--seed", value])
        assert exc.value.code == 2
        assert "seed must be in [0, 2**32)" in capsys.readouterr().err

    def test_corpus_path_is_a_file(self, tmp_path, capsys):
        blocker = tmp_path / "corpus"
        blocker.write_text("not a directory\n")
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--corpus", str(blocker)])
        assert exc.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_corpus_parent_missing(self, tmp_path, capsys):
        orphan = tmp_path / "no" / "such" / "corpus"
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--corpus", str(orphan)])
        assert exc.value.code == 2
        assert "parent directory does not exist" in capsys.readouterr().err

    def test_fresh_corpus_dir_in_existing_parent_ok(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        rc = main(["fuzz", "--budget", "1", "--corpus", str(corpus)])
        assert rc in (0, 3)
        assert corpus.is_dir()


class TestChaos:
    def test_chaos_single_cell(self, capsys):
        rc = main(["chaos", "incast-backpressure", "--loss-rates", "0.1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "incast-backpressure" in out
        assert "1 cells" in out
        assert "0 crashed" in out

    def test_chaos_no_retries(self, capsys):
        rc = main(["chaos", "incast-backpressure",
                   "--loss-rates", "0.1", "--no-retries"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "retries off" in out

    def test_chaos_json_output(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        rc = main(["chaos", "normal-contention",
                   "--loss-rates", "0.05", "--json", str(path)])
        assert rc == 0
        import json

        payload = json.loads(path.read_text())
        assert payload["summary"]["cells"] == 1
        assert payload["cells"][0]["scenario"] == "normal-contention"

    def test_chaos_unknown_scenario(self, capsys):
        rc = main(["chaos", "no-such-scenario"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestShards:
    """``--shards`` validation: reject non-positive, clamp with warnings."""

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_non_positive_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "pfc-storm", "--shards", value])
        assert exc.value.code == 2
        assert "must be" in capsys.readouterr().err

    def test_clamped_to_cpu_count(self, monkeypatch, capsys):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        rc = main(["run", "incast-backpressure", "--shards", "8"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "exceeds the 1 available CPU" in captured.err
        # Clamped all the way to 1: the in-process engine, no shard banner.
        assert "worker processes" not in captured.out

    def test_clamped_to_pod_groups(self, monkeypatch, capsys):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        rc = main(["run", "incast-backpressure", "--shards", "32"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "partitionable pod group" in captured.err
        assert "worker processes" in captured.out
        assert "CORRECT" in captured.out

    def test_sharded_run_diagnoses(self, monkeypatch, capsys):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        rc = main(["run", "incast-backpressure", "--shards", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "shards   : 2 worker processes" in captured.out
        assert "CORRECT" in captured.out


class TestAnalyzerJobs:
    """``--analyzer-jobs`` validation mirrors ``--shards``: reject
    non-positive values, clamp oversubscription to the CPU count."""

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_non_positive_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "pfc-storm", "--analyzer-jobs", value])
        assert exc.value.code == 2
        assert "must be" in capsys.readouterr().err

    def test_clamped_to_cpu_count(self, monkeypatch, capsys):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        rc = main(["run", "incast-backpressure", "--analyzer-jobs", "8"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "--analyzer-jobs 8 exceeds the 1 available CPU" in captured.err
        # Clamped to 1: serial analysis, no fan-out banner.
        assert "analyzer :" not in captured.out

    def test_parallel_run_diagnoses(self, monkeypatch, capsys):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        rc = main(["run", "in-loop-deadlock", "--analyzer-jobs", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "analyzer : 2 worker processes" in captured.out
        assert "CORRECT" in captured.out

    def test_default_stays_serial(self, capsys):
        rc = main(["run", "normal-contention"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "analyzer :" not in captured.out
