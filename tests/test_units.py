"""Unit-helper tests: time, size and bandwidth conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestTimeUnits:
    def test_usec(self):
        assert units.usec(1) == 1_000

    def test_msec(self):
        assert units.msec(1) == 1_000_000

    def test_sec(self):
        assert units.sec(1) == 1_000_000_000

    def test_nsec_identity(self):
        assert units.nsec(123) == 123

    def test_fractional_usec_rounds(self):
        assert units.usec(1.5) == 1_500

    def test_constants_are_consistent(self):
        assert units.SEC == 1000 * units.MSEC == 1_000_000 * units.USEC


class TestSizeUnits:
    def test_kilobytes(self):
        assert units.kilobytes(2) == 2_000

    def test_megabytes(self):
        assert units.megabytes(3) == 3_000_000

    def test_constants(self):
        assert units.MB == 1000 * units.KB
        assert units.GB == 1000 * units.MB


class TestBandwidth:
    def test_gbps_to_bytes_per_sec(self):
        assert units.gbps(100) == pytest.approx(12.5e9)

    def test_mbps(self):
        assert units.mbps(8) == pytest.approx(1e6)

    def test_serialization_delay_1kb_at_100g(self):
        # 1000 B at 12.5 GB/s = 80 ns
        assert units.serialization_delay_ns(1000, units.gbps(100)) == 80

    def test_serialization_delay_minimum_1ns(self):
        assert units.serialization_delay_ns(1, units.gbps(400)) >= 1

    def test_serialization_delay_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.serialization_delay_ns(1000, 0)

    def test_bytes_per_ns(self):
        assert units.bytes_per_ns(units.gbps(100)) == pytest.approx(12.5)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_serialization_delay_monotone_in_size(self, size):
        bw = units.gbps(100)
        assert units.serialization_delay_ns(size, bw) <= units.serialization_delay_ns(
            size + 1000, bw
        )

    @given(
        st.integers(min_value=64, max_value=10**7),
        st.floats(min_value=1e8, max_value=1e11, allow_nan=False),
    )
    def test_serialization_delay_positive(self, size, bw):
        assert units.serialization_delay_ns(size, bw) >= 1
