"""Smoke tests: the shipped examples must run clean as documented.

Each example is executed exactly as the README tells a user to run it
(``PYTHONPATH=src python examples/<name>.py``) in a subprocess, so import
errors, API drift, or assertion failures inside the examples fail here
instead of on a reader's machine.  The monitoring examples carry their
own assertions (storm alert fired, early warning preceded the verdict),
so a zero exit code means the full advertised story held.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

SMOKED = [
    "quickstart.py",
    "continuous_monitoring.py",
    "pfc_storm_monitoring.py",
    "serve_client.py",
]


def run_example(name):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )


@pytest.mark.parametrize("name", SMOKED)
def test_example_runs_clean(name):
    proc = run_example(name)
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{name} produced no output"


def test_monitoring_example_shows_the_alert_feed():
    proc = run_example("pfc_storm_monitoring.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "alerts raised by the continuous monitor" in proc.stdout
    assert "pfc_storm" in proc.stdout
    assert "incident timeline" in proc.stdout


def test_continuous_example_correlates_alerts_with_verdicts():
    proc = run_example("continuous_monitoring.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "live alert feed" in proc.stdout
    assert "early warning: True" in proc.stdout
    assert "fabric dashboard" in proc.stdout


def test_serve_example_plays_the_service_plane():
    proc = run_example("serve_client.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "query answered" in proc.stdout
    assert "incident: pfc-storm" in proc.stdout
    assert "stream closed by server (shutdown)" in proc.stdout
    assert "service plane example: all contracts held" in proc.stdout
