"""Workload model tests: size quantiles, Poisson arrivals."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import KB, MB, gbps, msec
from repro.workloads import FlowSizeDistribution, PoissonArrivals, SizeBand


class TestFlowSizeDistribution:
    def sample_many(self, dist, n=4000, seed=7):
        rng = random.Random(seed)
        return [dist.sample(rng) for _ in range(n)]

    def test_matches_paper_quantiles(self):
        """<80% of flows <= 10 MB, <90% <= 100 MB, rest 100-300 MB (§4.1)."""
        sizes = self.sample_many(FlowSizeDistribution())
        n = len(sizes)
        frac_10mb = sum(s <= 10 * MB for s in sizes) / n
        frac_100mb = sum(s <= 100 * MB for s in sizes) / n
        assert frac_10mb == pytest.approx(0.80, abs=0.03)
        assert frac_100mb == pytest.approx(0.90, abs=0.03)
        assert max(sizes) <= 300 * MB

    def test_scale_shrinks_sizes(self):
        scaled = FlowSizeDistribution(scale=1e-3)
        sizes = self.sample_many(scaled)
        assert max(sizes) <= 300 * KB
        frac = sum(s <= 10 * KB for s in sizes) / len(sizes)
        assert frac == pytest.approx(0.80, abs=0.05)

    def test_min_size_enforced(self):
        dist = FlowSizeDistribution(scale=1e-9, min_size=1 * KB)
        assert all(s == 1 * KB for s in self.sample_many(dist, 100))

    def test_mean_matches_empirical(self):
        dist = FlowSizeDistribution()
        sizes = self.sample_many(dist, 20000)
        empirical = sum(sizes) / len(sizes)
        assert empirical == pytest.approx(dist.mean(), rel=0.15)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution(bands=[SizeBand(1, 10, 0.5)])

    def test_deterministic_given_rng(self):
        dist = FlowSizeDistribution()
        a = self.sample_many(dist, 50, seed=3)
        b = self.sample_many(dist, 50, seed=3)
        assert a == b


class TestPoissonArrivals:
    def make(self, load=0.2, seed=1):
        return PoissonArrivals(
            FlowSizeDistribution(scale=1e-3),
            load=load,
            host_bandwidth=gbps(100),
            seed=seed,
        )

    def test_events_sorted_and_in_window(self):
        events = self.make().generate(["a", "b", "c"], duration_ns=msec(10))
        times = [t for t, *_ in events]
        assert times == sorted(times)
        assert all(0 <= t < msec(10) for t in times)

    def test_src_never_equals_dst(self):
        events = self.make().generate(["a", "b"], duration_ns=msec(10))
        assert all(src != dst for _, src, dst, _ in events)

    def test_rate_scales_with_load(self):
        low = len(self.make(load=0.05).generate(["a", "b", "c", "d"], msec(20)))
        high = len(self.make(load=0.4).generate(["a", "b", "c", "d"], msec(20)))
        assert high > 3 * low

    def test_offered_load_near_target(self):
        arrivals = self.make(load=0.25)
        hosts = [f"h{i}" for i in range(8)]
        duration = msec(50)
        events = arrivals.generate(hosts, duration)
        offered = sum(size for *_, size in events) / (
            len(hosts) * gbps(100) * duration / 1e9
        )
        assert offered == pytest.approx(0.25, rel=0.35)

    def test_exclude_pairs(self):
        events = self.make().generate(
            ["a", "b", "c"], msec(20), exclude_pairs={("a", "b")}
        )
        assert ("a", "b") not in {(s, d) for _, s, d, _ in events}

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(load=0.0)
        with pytest.raises(ValueError):
            self.make().generate(["only"], msec(1))

    def test_start_offset(self):
        events = self.make().generate(["a", "b"], msec(5), start_ns=msec(100))
        assert all(msec(100) <= t < msec(105) for t, *_ in events)
