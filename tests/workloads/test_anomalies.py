"""Scenario builder tests: structure, ground truth, injected dynamics."""

import pytest

from repro.core import AnomalyType
from repro.units import msec
from repro.workloads import (
    SCENARIO_BUILDERS,
    add_background_traffic,
    in_loop_deadlock_scenario,
    incast_backpressure_scenario,
    normal_contention_scenario,
    out_of_loop_deadlock_scenario,
    pfc_storm_scenario,
)


class TestScenarioStructure:
    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_builder_produces_consistent_scenario(self, name):
        sc = SCENARIO_BUILDERS[name](seed=3)
        assert sc.victims, "every scenario needs victims"
        assert sc.duration_ns > 0
        assert sc.network.flows, "builders must schedule traffic"
        for key in sc.truth.culprit_flows:
            assert key in {f.key for f in sc.network.flows}
        if sc.truth.injecting_host is not None:
            assert sc.truth.injecting_host in sc.network.hosts
        if sc.truth.initial_port is not None:
            assert sc.network.topology.has_node(sc.truth.initial_port.node)

    def test_incast_truth_type(self):
        sc = incast_backpressure_scenario(seed=1)
        assert sc.truth.anomaly is AnomalyType.MICRO_BURST_INCAST
        assert len(sc.truth.culprit_flows) == 6

    def test_storm_truth_type(self):
        sc = pfc_storm_scenario(seed=1)
        assert sc.truth.anomaly is AnomalyType.PFC_STORM
        assert sc.truth.injecting_host == "H0_0_0"

    def test_deadlock_loop_ports(self):
        sc = in_loop_deadlock_scenario(seed=1)
        assert len(sc.truth.loop_ports) == 4
        assert {p.node for p in sc.truth.loop_ports} == {"SW1", "SW2", "SW3", "SW4"}

    def test_out_of_loop_variants_differ(self):
        inj = out_of_loop_deadlock_scenario(seed=1, injection=True)
        cont = out_of_loop_deadlock_scenario(seed=1, injection=False)
        assert inj.truth.anomaly is AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION
        assert cont.truth.anomaly is AnomalyType.OUT_OF_LOOP_DEADLOCK_CONTENTION
        assert cont.truth.culprit_flows and not inj.truth.culprit_flows

    def test_seeds_change_jitter_not_structure(self):
        a = incast_backpressure_scenario(seed=1)
        b = incast_backpressure_scenario(seed=2)
        assert [f.key for f in a.victims] == [f.key for f in b.victims]
        assert a.truth.initial_port == b.truth.initial_port


class TestInjectedDynamics:
    def test_incast_generates_pfc(self):
        sc = incast_backpressure_scenario(seed=1)
        sc.network.run(sc.duration_ns)
        assert sum(s.stats.pause_sent for s in sc.network.switches.values()) > 0

    def test_storm_freezes_victim(self):
        sc = pfc_storm_scenario(seed=1)
        sc.network.run(msec(2))
        victim = sc.victims[0]
        assert not victim.completed

    def test_in_loop_deadlock_freezes_circulation(self):
        sc = in_loop_deadlock_scenario(seed=1)
        sc.network.run(sc.duration_ns)
        blocked = [f for f in sc.victims if not f.completed]
        assert len(blocked) == len(sc.victims), "deadlocked flows never finish"

    def test_deadlock_persists_after_burst_ends(self):
        sc = in_loop_deadlock_scenario(seed=1)
        net = sc.network
        net.run(msec(2))
        progress_at_2ms = [f.bytes_acked for f in sc.victims]
        net.run(msec(4))
        assert [f.bytes_acked for f in sc.victims] == progress_at_2ms

    def test_normal_contention_produces_no_pfc(self):
        sc = normal_contention_scenario(seed=1)
        sc.network.run(sc.duration_ns)
        assert sum(s.stats.pause_sent for s in sc.network.switches.values()) == 0

    def test_normal_contention_inflates_victim_rtt(self):
        sc = normal_contention_scenario(seed=1)
        net = sc.network
        net.run(sc.duration_ns)
        victim = sc.victims[0]
        base = net.estimate_base_rtt(victim.src_host, victim.key.dst_ip, victim.key)
        assert max(r for _, r in victim.rtt_samples) > 3 * base


class TestBackgroundTraffic:
    def test_background_disabled_at_zero_load(self, fat_tree):
        from repro.sim import Network

        net = Network(fat_tree)
        assert add_background_traffic(net, seed=1, load=0.0, duration_ns=msec(5)) == []

    def test_background_respects_exclusions(self, fat_tree):
        from repro.sim import Network

        net = Network(fat_tree)
        flows = add_background_traffic(
            net, seed=1, load=0.2, duration_ns=msec(5), exclude_hosts={"H0_0_0"}
        )
        assert flows
        assert all(f.src_host != "H0_0_0" and f.dst_host != "H0_0_0" for f in flows)

    def test_background_flows_started(self, fat_tree):
        from repro.sim import Network

        net = Network(fat_tree)
        flows = add_background_traffic(net, seed=1, load=0.1, duration_ns=msec(5))
        assert set(f.key for f in flows) <= set(f.key for f in net.flows)


class TestLordmaAttack:
    """The LoRDMA-style low-rate attack extension (§2.1)."""

    def test_attack_is_low_average_rate(self):
        from repro.workloads import lordma_attack_scenario

        sc = lordma_attack_scenario(seed=1)
        flows = [f for f in sc.network.flows if f.key in set(sc.truth.culprit_flows)]
        total = sum(f.size for f in flows)
        # Average attack rate over the scenario stays well under one link.
        bandwidth = sc.network.hosts[flows[0].src_host].bandwidth
        avg_rate = total / (sc.duration_ns / 1e9)
        assert avg_rate < 0.6 * bandwidth

    def test_attack_detected_and_attributed(self):
        from repro.core import AnomalyType
        from repro.experiments import RunConfig, diagnosis_correct, run_scenario
        from repro.workloads import lordma_attack_scenario

        sc = lordma_attack_scenario(seed=1)
        # Covert attacks need the paper's sensitive threshold (200% RTT).
        res = run_scenario(sc, RunConfig(threshold_multiplier=2.0))
        d = res.diagnosis()
        assert d is not None
        assert d.primary().anomaly is AnomalyType.MICRO_BURST_INCAST
        assert diagnosis_correct(d, sc.truth)
        # Every blamed flow is an actual attack flow, never the victim.
        assert set(d.primary().culprit_keys()) <= set(sc.truth.culprit_flows)

    def test_victim_recovers_between_pulses(self):
        from repro.workloads import lordma_attack_scenario

        sc = lordma_attack_scenario(seed=1)
        sc.network.run(sc.duration_ns)
        victim = sc.victims[0]
        assert victim.completed, "the covert attack degrades but never kills"
