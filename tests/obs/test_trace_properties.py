"""Property tests over the sim-level trace: conservation laws, pause-span
exclusivity, and the counters == trace-event-counts invariant."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, SimTraceObserver, Tracer, validate_records
from repro.sim import Network
from repro.topology import build_dumbbell, build_line
from repro.units import KB, msec, usec


def observe(net):
    tracer = Tracer()
    metrics = MetricsRegistry()
    root = tracer.begin_span("scenario", "prop", 0)
    obs = SimTraceObserver(tracer, metrics, parent=root)
    net.add_switch_observer(obs)
    return tracer, metrics, obs, root


def finish(net, tracer, obs, root):
    obs.finish(net.sim.now)
    tracer.end_span(root, net.sim.now)
    tracer.finish(net.sim.now)


def traced_run(specs, duration_ns=msec(30)):
    """Random dumbbell traffic with a SimTraceObserver on every switch."""
    net = Network(build_dumbbell(hosts_per_side=4))
    tracer, metrics, obs, root = observe(net)
    for i, (src, size_kb, start_us) in enumerate(specs):
        net.start_flow(
            net.make_flow(
                f"HL{src}", "HR0", size_kb * KB, usec(start_us), src_port=40000 + i
            )
        )
    net.run(duration_ns)
    finish(net, tracer, obs, root)
    return net, tracer, metrics


flow_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # src host index
        st.integers(min_value=10, max_value=300),  # size KB
        st.integers(min_value=0, max_value=100),  # start us
    ),
    min_size=1,
    max_size=6,
)


class TestConservation:
    @settings(max_examples=8, deadline=None)
    @given(flow_specs)
    def test_enqueues_equal_dequeues_per_switch(self, specs):
        """Lossless drained fabric: the trace shows every enqueued packet
        leaving its switch."""
        _, tracer, _ = traced_run(specs)
        enq, deq = Counter(), Counter()
        for event in tracer.events:
            if event.kind == "pkt_enqueue":
                enq[event.attrs["switch"]] += 1
            elif event.kind == "pkt_dequeue":
                deq[event.attrs["switch"]] += 1
        assert enq == deq
        assert sum(enq.values()) > 0

    @settings(max_examples=8, deadline=None)
    @given(flow_specs)
    def test_counters_match_trace_event_counts(self, specs):
        """The live ``events.*`` counters and the trace never diverge."""
        _, tracer, metrics = traced_run(specs)
        by_kind = Counter(event.kind for event in tracer.events)
        counters = metrics.to_dict()["counters"]
        for kind, count in by_kind.items():
            assert counters.get(f"events.{kind}") == count
        # And conversely: no counter claims events the trace lacks.
        for name, value in counters.items():
            if name.startswith("events."):
                assert by_kind[name[len("events."):]] == value

    @settings(max_examples=6, deadline=None)
    @given(flow_specs)
    def test_trace_is_structurally_valid(self, specs):
        _, tracer, _ = traced_run(specs)
        assert validate_records(tracer.records()) == []


class TestPauseSpans:
    def oversubscribed_run(self):
        # Five senders into H3_0 congest SW3's host port, so SW3 sends
        # PAUSE upstream to SW2 — switch-to-switch PFC the observer sees
        # (dumbbell congestion only pauses the sending *hosts*).
        net = Network(build_line(num_switches=3, hosts_per_switch=4))
        tracer, metrics, obs, root = observe(net)
        for i, src in enumerate(["H1_0", "H2_0", "H2_1", "H3_1", "H3_2"]):
            net.start_flow(
                net.make_flow(src, "H3_0", 400 * KB, usec(1), src_port=40000 + i)
            )
        net.run(msec(20))
        finish(net, tracer, obs, root)
        return net, tracer, metrics

    def test_pause_episodes_exist_and_are_bounded(self):
        net, tracer, _ = self.oversubscribed_run()
        pauses = [s for s in tracer.spans if s.kind == "port_pause"]
        assert pauses, "oversubscription produced no pause episodes"
        for span in pauses:
            assert span.end_ns is not None
            assert 0 <= span.start_ns <= span.end_ns <= net.sim.now

    def test_pause_spans_never_overlap_per_port(self):
        """PAUSE spans on one (switch, port) are exclusive episodes: a new
        one can only open after the previous closed (RESUME or expiry)."""
        _, tracer, _ = self.oversubscribed_run()
        by_port = {}
        for span in tracer.spans:
            if span.kind == "port_pause":
                key = (span.attrs["switch"], span.attrs["port"])
                by_port.setdefault(key, []).append(span)
        assert by_port
        for key, spans in by_port.items():
            spans.sort(key=lambda s: s.start_ns)
            for prev, nxt in zip(spans, spans[1:]):
                assert prev.end_ns <= nxt.start_ns, f"overlap on {key}"

    def test_pause_events_at_least_cover_episodes(self):
        _, tracer, metrics = self.oversubscribed_run()
        episodes = sum(1 for s in tracer.spans if s.kind == "port_pause")
        assert metrics.counter_value("events.pause_rx") >= episodes
