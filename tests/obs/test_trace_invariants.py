"""Trace-invariant tests: every anomaly scenario yields a structurally
valid trace whose diagnosis chains are complete — and under injected
faults, degraded chains are *flagged*, never silently truncated.
"""

import pytest

from repro.experiments import RunConfig, run_scenario
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.obs import ObsConfig, build_tree, check_causal_chains, validate_records
from repro.workloads import SCENARIO_BUILDERS

SCENARIOS = (
    "pfc-storm",
    "in-loop-deadlock",
    "out-of-loop-deadlock",
    "incast-backpressure",
    "normal-contention",
)

# Event kinds that mark an injected fault inside a diagnosis subtree.
DEGRADED_EVENTS = {
    "polling_lost",
    "report_lost",
    "report_truncated",
    "report_delayed",
}


def run_traced(name, seed=1, faults=None, retry=None):
    scenario = SCENARIO_BUILDERS[name](seed=seed)
    config = RunConfig(
        obs=ObsConfig(trace=True, sink="ring"), faults=faults, retry=retry
    )
    result = run_scenario(scenario, config)
    return result, result.obs.tracer.records()


def diagnosis_nodes(records):
    """victim -> its diagnosis SpanNode (asserts the tree assembles)."""
    roots, errors = build_tree(records)
    assert errors == []
    nodes = {}
    for root in roots:
        for diag in root.find("diagnosis"):
            nodes[diag.attrs.get("victim", diag.name)] = diag
    return nodes


def has_degradation_marker(diag):
    """A flagged fault anywhere in the diagnosis subtree."""
    for node in diag.walk():
        attrs = node.attrs
        if attrs.get("degraded") or attrs.get("unclosed") or attrs.get("unresolved"):
            return True
        if attrs.get("faults"):
            return True
    for event in diag.all_events():
        if event["kind"] in DEGRADED_EVENTS:
            return True
        if (event.get("attrs") or {}).get("faults"):
            return True
    return False


class TestFaultFreeChains:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_complete_causal_chains(self, name):
        result, records = run_traced(name)
        assert validate_records(records) == []
        chains = check_causal_chains(records)
        # Every chain is either complete or explicitly unresolved (a
        # background flow that complained but was never a declared victim).
        for victim, missing in chains.items():
            assert missing in ([], ["unresolved"]), f"{victim}: missing {missing}"
        assert [] in chains.values(), "no victim reached a complete chain"

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_every_diagnosed_victim_has_a_chain(self, name):
        result, records = run_traced(name)
        chains = check_causal_chains(records)
        for outcome in result.outcomes:
            if outcome.diagnosis is not None:
                assert str(outcome.victim) in chains
                assert chains[str(outcome.victim)] == []

    def test_single_scenario_root(self):
        _, records = run_traced("pfc-storm")
        roots, errors = build_tree(records)
        assert errors == []
        assert len(roots) == 1
        assert roots[0].kind == "scenario"

    def test_verdict_count_matches_outcomes(self):
        result, records = run_traced("in-loop-deadlock")
        diagnosed = sum(1 for o in result.outcomes if o.diagnosis is not None)
        verdicts = [r for r in records if r["type"] == "event" and r["kind"] == "verdict"]
        assert len(verdicts) == diagnosed


class TestChaosChains:
    """10% loss on the polling, report and DMA channels: chains may be
    flagged degraded but never silently lose links without a marker."""

    PLAN = dict(
        polling_loss_rate=0.10, report_loss_rate=0.10, dma_failure_rate=0.10
    )

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_degraded_flagged_never_missing(self, name):
        result, records = run_traced(
            name,
            faults=FaultPlan(seed=7, **self.PLAN),
            retry=RetryPolicy(),
        )
        assert validate_records(records) == []
        chains = check_causal_chains(records)
        nodes = diagnosis_nodes(records)
        # Every victim the runner diagnosed still has a diagnosis span.
        for outcome in result.outcomes:
            if outcome.diagnosis is not None:
                assert str(outcome.victim) in nodes
        for victim, missing in chains.items():
            if missing in ([], ["unresolved"]):
                continue
            # The chain lost links to injected faults — then the subtree
            # must carry an explicit degradation marker explaining it.
            assert has_degradation_marker(nodes[victim]), (
                f"{victim} chain missing {missing} with no degradation flag"
            )

    def test_chaos_metrics_record_injected_faults(self):
        result, _ = run_traced(
            "pfc-storm", faults=FaultPlan(seed=7, **self.PLAN), retry=RetryPolicy()
        )
        counters = result.metrics.to_dict()["counters"]
        injected = sum(
            v for k, v in counters.items() if k.startswith("faults.")
        )
        assert injected > 0
