"""Tracer unit tests: span lifecycle, sink contract, no-op fast path."""

import io
import json

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    RingBufferSink,
    Tracer,
)


class TestSpanLifecycle:
    def test_parent_links_nest(self):
        tracer = Tracer()
        root = tracer.begin_span("scenario", "run", 0)
        child = tracer.begin_span("diagnosis", "v1", 10, parent=root)
        grandchild = tracer.begin_span("polling_round", "round-1", 20, parent=child)
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        # Ids are one shared monotone sequence (global emission order).
        assert root.span_id < child.span_id < grandchild.span_id

    def test_end_span_is_idempotent(self):
        sink = ListSink()
        tracer = Tracer(sink)
        span = tracer.begin_span("epoch_read", "SW1", 100)
        tracer.end_span(span, 200, epochs=3)
        tracer.end_span(span, 999, epochs=777)  # second end: ignored
        assert span.end_ns == 200
        assert span.attrs["epochs"] == 3
        assert len(sink.records) == 1

    def test_end_clamps_to_start(self):
        tracer = Tracer()
        span = tracer.begin_span("graph_build", "v1", 500)
        tracer.end_span(span, 400)  # never goes backwards in time
        assert span.end_ns == 500

    def test_open_spans_tracks_unended(self):
        tracer = Tracer()
        a = tracer.begin_span("scenario", "run", 0)
        b = tracer.begin_span("diagnosis", "v1", 1, parent=a)
        assert {s.span_id for s in tracer.open_spans()} == {a.span_id, b.span_id}
        tracer.end_span(b, 2)
        assert [s.span_id for s in tracer.open_spans()] == [a.span_id]

    def test_finish_flags_unclosed_spans(self):
        sink = ListSink()
        tracer = Tracer(sink)
        a = tracer.begin_span("scenario", "run", 0)
        tracer.begin_span("diagnosis", "v1", 5, parent=a)
        tracer.finish(100)
        assert tracer.finished
        assert not tracer.open_spans()
        # Both spans were force-closed at finish time, flagged not dropped.
        assert all(r["end_ns"] == 100 and r["attrs"]["unclosed"] for r in sink.records)

    def test_records_merged_in_id_order(self):
        tracer = Tracer()
        root = tracer.begin_span("scenario", "run", 0)
        tracer.event("rtt_trigger", span=root, time_ns=10)
        child = tracer.begin_span("diagnosis", "v1", 10, parent=root)
        tracer.event("verdict", span=child, time_ns=20)
        tracer.end_span(child, 20)
        tracer.end_span(root, 30)
        records = tracer.records()
        assert [r["id"] for r in records] == [1, 2, 3, 4]
        assert [r["type"] for r in records] == ["span", "event", "span", "event"]


class TestSinks:
    def test_sink_receives_events_immediately_spans_on_end(self):
        sink = ListSink()
        tracer = Tracer(sink)
        span = tracer.begin_span("scenario", "run", 0)
        assert sink.records == []  # spans are emitted when they *end*
        tracer.event("polling_mirror", span=span, time_ns=5, switch="SW1")
        assert [r["type"] for r in sink.records] == ["event"]
        tracer.end_span(span, 10)
        assert [r["type"] for r in sink.records] == ["event", "span"]

    def test_ring_sink_evicts_oldest(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink)
        for i in range(5):
            tracer.event("pkt_enqueue", time_ns=i)
        assert sink.emitted == 5
        assert sink.dropped == 2
        assert [r["time_ns"] for r in sink.records] == [2, 3, 4]
        # The tracer itself retains everything regardless of sink policy.
        assert len(tracer.records()) == 5

    def test_jsonl_sink_writes_sorted_compact_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(str(path)))
        span = tracer.begin_span("scenario", "run", 0)
        tracer.event("verdict", span=span, time_ns=7, anomaly="pfc_storm")
        tracer.finish(9)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            # Byte-determinism contract: sorted keys, compact separators.
            assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))
        kinds = {json.loads(line)["kind"] for line in lines}
        assert kinds == {"verdict", "scenario"}

    def test_jsonl_sink_borrowed_handle_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"type": "event", "id": 1})
        sink.close()
        assert not buf.closed  # caller-owned handles stay open
        assert buf.getvalue().count("\n") == 1

    def test_sink_swap_between_runs(self, tmp_path):
        """The same instrumentation drives any sink: records are identical."""
        def run(sink):
            tracer = Tracer(sink)
            root = tracer.begin_span("scenario", "run", 0)
            tracer.event("stall_trigger", span=root, time_ns=3)
            tracer.finish(5)
            return tracer.records()

        ring, lst = RingBufferSink(), ListSink()
        assert run(ring) == run(lst)
        assert list(ring.records) == lst.records


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.begin_span("scenario", "run", 0)
        assert span is NULL_SPAN
        NULL_TRACER.end_span(span, 10)
        assert NULL_TRACER.event("verdict", span=span, time_ns=1) is None
        NULL_TRACER.finish(99)
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.open_spans() == []

    def test_fresh_null_tracer_shares_behavior(self):
        tracer = NullTracer()
        for _ in range(100):
            tracer.begin_span("epoch_read", "SW", 0)
        assert tracer.spans == [] and tracer.events == []
