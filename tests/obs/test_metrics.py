"""MetricsRegistry unit tests: metric kinds, legacy absorption, export."""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestMetricKinds:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        reg.inc("polling.rounds")
        reg.inc("polling.rounds", 3)
        assert reg.counter_value("polling.rounds") == 4
        assert reg.counter("polling.rounds") is reg.counter("polling.rounds")

    def test_counter_value_defaults_to_zero(self):
        assert MetricsRegistry().counter_value("never.touched") == 0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("run.wall_s").set(1.5)
        reg.gauge("run.wall_s").set(0.25)
        assert reg.gauge("run.wall_s").value == 0.25

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("stage.simulate_s")
        for v in (2.0, 1.0, 4.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.min == 1.0 and hist.max == 4.0
        assert hist.mean == 7.0 / 3
        summary = hist.to_dict()
        assert summary["sum"] == 7.0 and summary["count"] == 3

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("x").mean == 0.0


class TestAbsorbCounters:
    def test_absorbs_flat_ints_as_counters(self):
        reg = MetricsRegistry()
        reg.absorb_counters("agent", {"triggers": 4, "restarts": 1})
        assert reg.counter_value("agent.triggers") == 4
        assert reg.counter_value("agent.restarts") == 1

    def test_recurses_nested_mappings(self):
        reg = MetricsRegistry()
        reg.absorb_counters("cache", {"ecmp_select": {"hits": 10, "misses": 2}})
        assert reg.counter_value("cache.ecmp_select.hits") == 10
        assert reg.counter_value("cache.ecmp_select.misses") == 2

    def test_floats_become_gauges_bools_become_counters(self):
        reg = MetricsRegistry()
        reg.absorb_counters("run", {"wall_s": 0.5, "degraded": True})
        assert reg.gauge("run.wall_s").value == 0.5
        assert reg.counter_value("run.degraded") == 1
        assert reg.counter_value("run.wall_s") == 0  # not double-counted

    def test_absorb_accumulates_on_repeat(self):
        reg = MetricsRegistry()
        reg.absorb_counters("polling", {"packets_lost": 2})
        reg.absorb_counters("polling", {"packets_lost": 3})
        assert reg.counter_value("polling.packets_lost") == 5


class TestExport:
    def test_to_dict_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("events.verdict")
        reg.inc("collector.epoch_reads", 2)
        reg.gauge("run.sim_ns").set(1e9)
        reg.histogram("stage.diagnose_s").observe(0.1)
        doc = reg.to_dict()
        assert list(doc) == ["counters", "gauges", "histograms"]
        assert list(doc["counters"]) == ["collector.epoch_reads", "events.verdict"]
        # Must round-trip through json (the --metrics-json export path).
        assert json.loads(json.dumps(doc)) == doc


class TestHistogramQuantiles:
    def test_empty_histogram_quantiles_are_none(self):
        h = Histogram()
        assert h.quantile(0.5) is None
        assert h.to_dict()["p50"] is None

    def test_quantile_rejects_out_of_range(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_single_value_all_quantiles_collapse(self):
        h = Histogram()
        h.observe(42.0)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 42.0

    def test_quantiles_clamped_to_observed_extremes(self):
        h = Histogram()
        for v in (10.0, 11.0, 12.0):
            h.observe(v)
        assert 10.0 <= h.quantile(0.5) <= 12.0
        assert h.quantile(0.0) == 10.0
        assert h.quantile(1.0) == 12.0

    def test_quantiles_order_and_accuracy(self):
        """Log2 buckets are exact within a factor of two: p95 of a uniform
        1..1000 stream must land in [p95_true/2, p95_true*2]."""
        h = Histogram()
        for v in range(1, 1001):
            h.observe(float(v))
        p50, p95, p99 = h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
        assert p50 <= p95 <= p99
        assert 250 <= p50 <= 1000
        assert 475 <= p95 <= 1000
        assert 495 <= p99 <= 1000

    def test_to_dict_includes_quantile_summary(self):
        h = Histogram()
        for v in (1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        doc = h.to_dict()
        assert set(doc) >= {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}
        assert json.loads(json.dumps(doc)) == doc

    def test_zero_and_negative_values_bucket_safely(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-5.0)
        h.observe(3.0)
        assert h.quantile(0.5) is not None
        assert h.min == -5.0
