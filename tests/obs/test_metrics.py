"""MetricsRegistry unit tests: metric kinds, legacy absorption, export."""

import json

from repro.obs import MetricsRegistry


class TestMetricKinds:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        reg.inc("polling.rounds")
        reg.inc("polling.rounds", 3)
        assert reg.counter_value("polling.rounds") == 4
        assert reg.counter("polling.rounds") is reg.counter("polling.rounds")

    def test_counter_value_defaults_to_zero(self):
        assert MetricsRegistry().counter_value("never.touched") == 0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("run.wall_s").set(1.5)
        reg.gauge("run.wall_s").set(0.25)
        assert reg.gauge("run.wall_s").value == 0.25

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("stage.simulate_s")
        for v in (2.0, 1.0, 4.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.min == 1.0 and hist.max == 4.0
        assert hist.mean == 7.0 / 3
        summary = hist.to_dict()
        assert summary["sum"] == 7.0 and summary["count"] == 3

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("x").mean == 0.0


class TestAbsorbCounters:
    def test_absorbs_flat_ints_as_counters(self):
        reg = MetricsRegistry()
        reg.absorb_counters("agent", {"triggers": 4, "restarts": 1})
        assert reg.counter_value("agent.triggers") == 4
        assert reg.counter_value("agent.restarts") == 1

    def test_recurses_nested_mappings(self):
        reg = MetricsRegistry()
        reg.absorb_counters("cache", {"ecmp_select": {"hits": 10, "misses": 2}})
        assert reg.counter_value("cache.ecmp_select.hits") == 10
        assert reg.counter_value("cache.ecmp_select.misses") == 2

    def test_floats_become_gauges_bools_become_counters(self):
        reg = MetricsRegistry()
        reg.absorb_counters("run", {"wall_s": 0.5, "degraded": True})
        assert reg.gauge("run.wall_s").value == 0.5
        assert reg.counter_value("run.degraded") == 1
        assert reg.counter_value("run.wall_s") == 0  # not double-counted

    def test_absorb_accumulates_on_repeat(self):
        reg = MetricsRegistry()
        reg.absorb_counters("polling", {"packets_lost": 2})
        reg.absorb_counters("polling", {"packets_lost": 3})
        assert reg.counter_value("polling.packets_lost") == 5


class TestExport:
    def test_to_dict_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("events.verdict")
        reg.inc("collector.epoch_reads", 2)
        reg.gauge("run.sim_ns").set(1e9)
        reg.histogram("stage.diagnose_s").observe(0.1)
        doc = reg.to_dict()
        assert list(doc) == ["counters", "gauges", "histograms"]
        assert list(doc["counters"]) == ["collector.epoch_reads", "events.verdict"]
        # Must round-trip through json (the --metrics-json export path).
        assert json.loads(json.dumps(doc)) == doc
