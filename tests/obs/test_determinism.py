"""Determinism differentials: identical (seed, scenario) runs emit
byte-identical trace JSONL, and turning the tracer on never changes what
the pipeline computes."""

import pytest

from repro.experiments import RunConfig, run_scenario
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.obs import ObsConfig
from repro.workloads import SCENARIO_BUILDERS


def run_jsonl(name, path, seed=1, sim_events=False, faults=None, retry=None):
    scenario = SCENARIO_BUILDERS[name](seed=seed)
    config = RunConfig(
        obs=ObsConfig(
            trace=True, sink="jsonl", jsonl_path=str(path), sim_events=sim_events
        ),
        faults=faults,
        retry=retry,
    )
    run_scenario(scenario, config)
    return path.read_bytes()


class TestByteIdenticalTraces:
    @pytest.mark.parametrize("name", ["pfc-storm", "in-loop-deadlock"])
    def test_same_seed_same_bytes(self, tmp_path, name):
        first = run_jsonl(name, tmp_path / "a.jsonl")
        second = run_jsonl(name, tmp_path / "b.jsonl")
        assert first == second
        assert first  # non-empty: the trace actually recorded the run

    def test_sim_events_are_deterministic_too(self, tmp_path):
        first = run_jsonl(
            "normal-contention", tmp_path / "a.jsonl", sim_events=True
        )
        second = run_jsonl(
            "normal-contention", tmp_path / "b.jsonl", sim_events=True
        )
        assert first == second
        assert b"pkt_enqueue" in first

    def test_chaos_traces_are_deterministic(self, tmp_path):
        """Fault injection is seeded: chaos runs replay byte-identically."""
        plan = dict(
            faults=FaultPlan(
                seed=7,
                polling_loss_rate=0.10,
                report_loss_rate=0.10,
                dma_failure_rate=0.10,
            ),
            retry=RetryPolicy(),
        )
        first = run_jsonl("pfc-storm", tmp_path / "a.jsonl", **plan)
        second = run_jsonl("pfc-storm", tmp_path / "b.jsonl", **plan)
        assert first == second

    def test_different_seeds_differ(self, tmp_path):
        first = run_jsonl("pfc-storm", tmp_path / "a.jsonl", seed=1)
        second = run_jsonl("pfc-storm", tmp_path / "b.jsonl", seed=2)
        assert first != second


class TestTracerIsPureObserver:
    """Tracing on vs off: same diagnoses, same accounting, same sim."""

    @pytest.mark.parametrize("name", ["pfc-storm", "incast-backpressure"])
    def test_tracer_does_not_perturb_results(self, tmp_path, name):
        def run(obs):
            scenario = SCENARIO_BUILDERS[name](seed=1)
            return run_scenario(scenario, RunConfig(obs=obs))

        plain = run(None)
        traced = run(
            ObsConfig(trace=True, sink="jsonl", jsonl_path=str(tmp_path / "t.jsonl"))
        )

        def digest(result):
            return {
                "diagnoses": [
                    (str(o.victim),
                     o.diagnosis.describe() if o.diagnosis else None,
                     o.diagnosis.completeness if o.diagnosis else None,
                     o.diagnosis.confidence if o.diagnosis else None)
                    for o in result.outcomes
                ],
                "collected": result.collected_switches,
                "events_run": result.events_run,
                "polling_packets": result.polling_packets,
                "collections": result.collections,
                "processing_bytes": result.processing_bytes,
                "bandwidth_bytes": result.bandwidth_bytes,
                # PerfStats modulo wall-clock (wall_s/events_per_sec/stages)
                # and the process-global caches that warm across runs.
                "sim_counters": (
                    result.perf.events_run,
                    result.perf.peak_pending_events,
                    result.perf.events_purged,
                    result.perf.compactions,
                ),
            }

        assert digest(plain) == digest(traced)

    def test_metrics_present_even_without_tracer(self):
        scenario = SCENARIO_BUILDERS["normal-contention"](seed=1)
        result = run_scenario(scenario, RunConfig())
        assert result.obs is None
        counters = result.metrics.to_dict()["counters"]
        assert counters.get("collection.collections", 0) > 0
        # No trace: no trace-derived event counters.
        assert not any(k.startswith("events.") for k in counters)
