"""Differential property tests: columnar register plane vs the reference.

The columnar plane in :mod:`repro.telemetry.hawkeye` must be *byte-identical*
to the retained pure-Python reference (:mod:`repro.telemetry.reference`):
same snapshot contents including dict iteration orders (eviction order, slot
order, port/meter first-touch order), same line-rate query answers, same
ring wrap-around semantics.  These tests drive both implementations with
identical randomized packet/PFC streams through the raw observer hooks and
compare everything, interleaving queries mid-stream so pending-queue flushes
happen at arbitrary points.
"""

import random

import pytest

from repro.sim.packet import DATA_PRIORITY, FlowKey, Packet, PacketType
from repro.telemetry import (
    EpochScheme,
    HawkeyeSwitchTelemetry,
    ReferenceSwitchTelemetry,
    TelemetryConfig,
)
from repro.telemetry.snapshot import SwitchReport


class _StubPort:
    def __init__(self, bandwidth: float = 100e9) -> None:
        self.bandwidth = bandwidth
        self.peer_is_host = False


class _StubSwitch:
    def __init__(self, num_ports: int) -> None:
        self.ports = {p: _StubPort() for p in range(num_ports)}


def _make_pair(flow_slots=8, shift=12):
    scheme = EpochScheme(shift=shift)
    config = TelemetryConfig(scheme=scheme, flow_slots=flow_slots)
    return (
        HawkeyeSwitchTelemetry("SW", config),
        ReferenceSwitchTelemetry("SW", config),
        scheme,
    )


def _random_stream(rng, num_ports, num_flows, num_events, max_step_ns):
    """A time-ordered mix of data enqueues and PFC frames."""
    flows = [
        FlowKey(f"10.0.0.{i}", f"10.0.1.{i % 3}", 1000 + i, 4791)
        for i in range(num_flows)
    ]
    events = []
    t = rng.randrange(1 << 14)
    for _ in range(num_events):
        t += rng.randrange(max_step_ns)
        if rng.random() < 0.08:
            quanta = rng.choice([0, 1, 0xFF, 0xFFFF])
            events.append(("pfc", t, rng.randrange(num_ports), quanta))
        else:
            events.append(
                (
                    "data",
                    t,
                    rng.choice(flows),
                    rng.randrange(num_ports),  # egress
                    rng.choice([None] + list(range(num_ports))),  # ingress
                    rng.randrange(64),  # queue depth (pkts)
                    rng.choice([64, 1024, 4096]),  # size
                    rng.random() < 0.3,  # port paused at enqueue
                )
            )
    return flows, events


def _apply(telem, switch, event):
    if event[0] == "pfc":
        _, t, port, quanta = event
        telem.on_pfc_received(switch, t, port, DATA_PRIORITY, quanta)
    else:
        _, t, flow, egress, ingress, qdepth, size, paused = event
        pkt = Packet(PacketType.DATA, size, DATA_PRIORITY, flow=flow)
        telem.on_egress_enqueue(switch, t, pkt, egress, ingress, qdepth, 0, paused)


def _assert_reports_identical(got: SwitchReport, want: SwitchReport) -> None:
    """Equality including dict iteration order at every level."""
    assert got.port_status == want.port_status
    assert list(got.port_status) == list(want.port_status)
    assert [e.epoch_number for e in got.epochs] == [e.epoch_number for e in want.epochs]
    for ge, we in zip(got.epochs, want.epochs):
        assert list(ge.flows) == list(we.flows)  # order: evicted, then slots
        assert ge.flows == we.flows
        assert list(ge.ports) == list(we.ports)  # order: first touch
        assert ge.ports == we.ports
        assert list(ge.meters) == list(we.meters)  # order: first touch
        assert ge.meters == we.meters


def _assert_queries_identical(col, ref, flows, num_ports, now, scheme) -> None:
    lookbacks = [None, 1, 2, scheme.num_epochs]
    for lb in lookbacks:
        for port in range(num_ports):
            assert col.port_paused_num(port, now, lb) == ref.port_paused_num(port, now, lb)
            assert col.port_pause_rx(port, now, lb) == ref.port_pause_rx(port, now, lb)
            assert col.port_pause_evidence(port, now, lb) == ref.port_pause_evidence(
                port, now, lb
            )
            for ingress in range(num_ports):
                assert col.meter_volume(ingress, port, now, lb) == ref.meter_volume(
                    ingress, port, now, lb
                )
        for flow in flows:
            assert col.flow_paused_num(flow, now, lb) == ref.flow_paused_num(flow, now, lb)
    unseen = FlowKey("192.168.0.1", "192.168.0.2", 7, 7)
    assert col.flow_paused_num(unseen, now) == ref.flow_paused_num(unseen, now) == 0
    for port in range(num_ports):
        assert col.port_is_paused(port, now) == ref.port_is_paused(port, now)
        assert col.remaining_pause_ns(port, now) == ref.remaining_pause_ns(port, now)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("flow_slots", [1, 2, 8])
def test_randomized_streams_match(seed, flow_slots):
    """Same stream in, identical registers out — snapshots, orders, queries.

    Small ``flow_slots`` forces hash collisions and evictions; the time
    steps push the stream through many ring wrap-arounds (the scheme keeps
    only 4 epochs); queries are interleaved so the columnar plane's pending
    queues flush at arbitrary stream positions.
    """
    num_ports = 4
    col, ref, scheme = _make_pair(flow_slots=flow_slots)
    switch = _StubSwitch(num_ports)
    rng = random.Random(seed)
    flows, events = _random_stream(
        rng, num_ports, num_flows=7, num_events=1200, max_step_ns=400
    )
    check_at = {len(events) // 3, 2 * len(events) // 3}
    now = 0
    for i, event in enumerate(events):
        now = event[1]
        _apply(col, switch, event)
        _apply(ref, switch, event)
        if i in check_at:
            _assert_reports_identical(col.snapshot(now), ref.snapshot(now))
            _assert_queries_identical(col, ref, flows, num_ports, now, scheme)
    assert col.pause_frames_seen == ref.pause_frames_seen
    _assert_queries_identical(col, ref, flows, num_ports, now, scheme)
    for lb in (None, 1, 3):
        _assert_reports_identical(col.snapshot(now, lb), ref.snapshot(now, lb))
    # Evictions in epochs that were overwritten before any read are invisible
    # to the columnar plane (documented deviation); never overcounted.
    assert col.evictions <= ref.evictions


def test_evictions_match_without_wraparound():
    """With every epoch read before being overwritten, counts agree exactly."""
    num_ports = 3
    col, ref, scheme = _make_pair(flow_slots=1, shift=16)
    switch = _StubSwitch(num_ports)
    rng = random.Random(99)
    flows, events = _random_stream(
        rng, num_ports, num_flows=5, num_events=400, max_step_ns=120
    )
    for event in events:
        _apply(col, switch, event)
        _apply(ref, switch, event)
        # Reading every event keeps all pending queues flushed, so no
        # eviction ever disappears into a discarded epoch.
        assert col.evictions == ref.evictions
    assert ref.evictions > 0


@pytest.mark.parametrize("seed", range(3))
def test_columnar_roundtrip_preserves_report(seed):
    """to_columnar/from_columnar round-trips contents and orders exactly."""
    num_ports = 4
    col, ref, scheme = _make_pair(flow_slots=4)
    switch = _StubSwitch(num_ports)
    rng = random.Random(1000 + seed)
    flows, events = _random_stream(
        rng, num_ports, num_flows=6, num_events=600, max_step_ns=300
    )
    for event in events:
        _apply(col, switch, event)
    report = col.snapshot(events[-1][1])
    rebuilt = SwitchReport.from_columnar(report.to_columnar())
    _assert_reports_identical(rebuilt, report)
    assert rebuilt.switch == report.switch
    assert rebuilt.collect_time == report.collect_time
    assert rebuilt.agg_flows() == report.agg_flows()
    assert rebuilt.agg_ports() == report.agg_ports()
    assert rebuilt.agg_meters() == report.agg_meters()


def test_snapshot_cache_serves_repeated_reads():
    """An idle window is re-read from the snapshot cache, identically."""
    num_ports = 2
    col, ref, scheme = _make_pair()
    switch = _StubSwitch(num_ports)
    rng = random.Random(7)
    flows, events = _random_stream(
        rng, num_ports, num_flows=4, num_events=300, max_step_ns=200
    )
    for event in events:
        _apply(col, switch, event)
        _apply(ref, switch, event)
    now = events[-1][1]
    first = col.snapshot(now)
    hits_before = col.snapshot_cache_hits
    second = col.snapshot(now)
    assert col.snapshot_cache_hits == hits_before + 1
    _assert_reports_identical(second, first)
    _assert_reports_identical(second, ref.snapshot(now))


def test_grow_ports_remaps_meters():
    """Port numbers beyond the initial map grow the columns; meters remap."""
    col, ref, scheme = _make_pair(flow_slots=8)
    small_switch = _StubSwitch(2)  # first hook call captures num_ports = 2
    big_switch = _StubSwitch(6)
    flow = FlowKey("10.0.0.1", "10.0.1.1", 1000, 4791)
    t = 1 << 14
    for telem in (col, ref):
        _apply(telem, small_switch, ("data", t, flow, 1, 0, 3, 1024, True))
        _apply(telem, small_switch, ("pfc", t + 10, 1, 0xFF))
        # Egress/ingress 5 exceed the captured port count: _grow_ports path.
        _apply(telem, big_switch, ("data", t + 20, flow, 5, 3, 1, 64, False))
        _apply(telem, big_switch, ("pfc", t + 30, 4, 0xFFFF))
    now = t + 40
    _assert_reports_identical(col.snapshot(now), ref.snapshot(now))
    assert col.meter_volume(0, 1, now) == ref.meter_volume(0, 1, now) == 1024
    assert col.meter_volume(3, 5, now) == ref.meter_volume(3, 5, now) == 64
    assert col.port_pause_rx(4, now) == ref.port_pause_rx(4, now) == 1
