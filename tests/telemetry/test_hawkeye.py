"""Hawkeye switch telemetry tests: flow tables, port counters, meters,
PFC status registers, epoch rollover and eviction."""

import pytest

from repro.sim import DATA_PRIORITY, FlowKey, Network, Packet
from repro.telemetry import (
    EpochScheme,
    HawkeyeDeployment,
    HawkeyeSwitchTelemetry,
    TelemetryConfig,
)
from repro.units import KB, msec, usec


def run_tiny_flow(tiny_net, deployment=None, size=20 * KB):
    dep = deployment or HawkeyeDeployment(tiny_net)
    flow = tiny_net.make_flow("A", "B", size, usec(1))
    tiny_net.start_flow(flow)
    tiny_net.run(msec(1))
    return dep, flow


class TestFlowTable:
    def test_records_flow_packets(self, tiny_net):
        dep, flow = run_tiny_flow(tiny_net)
        rep = dep.for_switch("SW").snapshot(tiny_net.sim.now)
        entries = rep.agg_flows()
        egress = tiny_net.topology.attachment_of("B").port
        entry = entries[(flow.key, egress)]
        assert entry.pkt_count == 20
        assert entry.byte_count == 20 * KB

    def test_control_traffic_not_recorded(self, tiny_net):
        dep, flow = run_tiny_flow(tiny_net)
        rep = dep.for_switch("SW").snapshot(tiny_net.sim.now)
        # only the data flow (one direction) appears; ACKs do not
        assert {k for (k, _p) in rep.agg_flows()} == {flow.key}

    def test_collision_evicts_to_controller(self, tiny_net):
        config = TelemetryConfig(flow_slots=1)  # every flow collides
        dep = HawkeyeDeployment(tiny_net, config)
        f1 = tiny_net.make_flow("A", "B", 10 * KB, usec(1), src_port=1)
        f2 = tiny_net.make_flow("A", "B", 10 * KB, usec(1), src_port=2)
        tiny_net.start_flow(f1)
        tiny_net.start_flow(f2)
        tiny_net.run(msec(1))
        telem = dep.for_switch("SW")
        assert telem.evictions > 0
        # Both flows' full counts survive in the snapshot (evicted entries
        # are merged back, §3.3: "stored at the controller").
        rep = telem.snapshot(tiny_net.sim.now)
        entries = rep.agg_flows()
        total = sum(e.pkt_count for e in entries.values())
        assert total == 20

    def test_flow_paused_num_query(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        sw = tiny_net.switch("SW")
        port = tiny_net.topology.attachment_of("B").port
        sw.receive(Packet.pfc(DATA_PRIORITY, 0xFFFF, 0), port)
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(100))
        telem = dep.for_switch("SW")
        assert telem.flow_paused_num(flow.key, tiny_net.sim.now) > 0


class TestPortTelemetry:
    def test_port_counters_preaggregated(self, tiny_net):
        dep, flow = run_tiny_flow(tiny_net)
        rep = dep.for_switch("SW").snapshot(tiny_net.sim.now)
        egress = tiny_net.topology.attachment_of("B").port
        ports = rep.agg_ports()
        assert ports[egress].pkt_count == 20

    def test_paused_packets_counted_per_port(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        sw = tiny_net.switch("SW")
        port = tiny_net.topology.attachment_of("B").port
        sw.receive(Packet.pfc(DATA_PRIORITY, 0xFFFF, 0), port)
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(100))
        telem = dep.for_switch("SW")
        assert telem.port_paused_num(port, tiny_net.sim.now) > 0


class TestCausalityStructure:
    def test_meter_records_port_pair_volume(self, tiny_net):
        dep, flow = run_tiny_flow(tiny_net)
        telem = dep.for_switch("SW")
        ingress = tiny_net.topology.attachment_of("A").port
        egress = tiny_net.topology.attachment_of("B").port
        assert telem.meter_volume(ingress, egress, tiny_net.sim.now) == 20 * KB

    def test_meter_zero_for_unused_pair(self, tiny_net):
        dep, flow = run_tiny_flow(tiny_net)
        telem = dep.for_switch("SW")
        egress = tiny_net.topology.attachment_of("B").port
        assert telem.meter_volume(egress, egress, tiny_net.sim.now) == 0

    def test_port_status_register_tracks_pause(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        sw = tiny_net.switch("SW")
        telem = dep.for_switch("SW")
        port = tiny_net.topology.attachment_of("B").port
        sw.receive(Packet.pfc(DATA_PRIORITY, 0xFFFF, 0), port)
        assert telem.port_is_paused(port, tiny_net.sim.now)
        assert telem.remaining_pause_ns(port, tiny_net.sim.now) > 0

    def test_port_status_cleared_by_resume(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        sw = tiny_net.switch("SW")
        telem = dep.for_switch("SW")
        port = tiny_net.topology.attachment_of("B").port
        sw.receive(Packet.pfc(DATA_PRIORITY, 0xFFFF, 0), port)
        sw.receive(Packet.pfc(DATA_PRIORITY, 0, 0), port)
        assert not telem.port_is_paused(port, tiny_net.sim.now + 1)


class TestEpochRing:
    def test_epochs_separate_traffic(self, tiny_net):
        scheme = EpochScheme(shift=17, index_bits=2)  # ~131 us epochs
        dep = HawkeyeDeployment(tiny_net, TelemetryConfig(scheme=scheme))
        f1 = tiny_net.make_flow("A", "B", 10 * KB, usec(1), src_port=1)
        f2 = tiny_net.make_flow("A", "B", 10 * KB, usec(200), src_port=2)
        tiny_net.start_flow(f1)
        tiny_net.start_flow(f2)
        tiny_net.run(usec(300))
        rep = dep.for_switch("SW").snapshot(tiny_net.sim.now)
        assert len(rep.epochs) == 2
        per_epoch_flows = [{k for (k, _p) in e.flows} for e in rep.epochs]
        assert per_epoch_flows[0] == {f1.key}
        assert per_epoch_flows[1] == {f2.key}

    def test_ring_wraparound_resets_old_epoch(self, tiny_net):
        scheme = EpochScheme(shift=17, index_bits=1)  # ring of 2
        dep = HawkeyeDeployment(tiny_net, TelemetryConfig(scheme=scheme))
        f1 = tiny_net.make_flow("A", "B", 10 * KB, usec(1), src_port=1)
        tiny_net.start_flow(f1)
        tiny_net.run(usec(50))
        # Two epochs later new traffic lands in f1's ring slot: the write
        # with a newer epoch ID resets it (lazy hardware reset).
        later = usec(1) + 2 * scheme.epoch_size_ns
        f2 = tiny_net.make_flow("A", "B", 10 * KB, later, src_port=2)
        tiny_net.start_flow(f2)
        tiny_net.run(later + usec(100))
        rep = dep.for_switch("SW").snapshot(tiny_net.sim.now)
        keys = {k for e in rep.epochs for (k, _p) in e.flows}
        assert f1.key not in keys, "overwritten epoch must not resurface"
        assert f2.key in keys

    def test_frozen_network_epochs_stay_readable(self, tiny_net):
        """Registers are reset on *write*, not by time passing: the last
        traffic before a freeze (e.g. a forming deadlock) remains readable
        long after its nominal window."""
        scheme = EpochScheme(shift=17, index_bits=1)
        dep = HawkeyeDeployment(tiny_net, TelemetryConfig(scheme=scheme))
        f1 = tiny_net.make_flow("A", "B", 10 * KB, usec(1), src_port=1)
        tiny_net.start_flow(f1)
        tiny_net.run(usec(50))
        # Silence for many epochs: nothing overwrites the slot.
        tiny_net.run(usec(50) + 10 * scheme.epoch_size_ns)
        rep = dep.for_switch("SW").snapshot(tiny_net.sim.now)
        keys = {k for e in rep.epochs for (k, _p) in e.flows}
        assert f1.key in keys

    def test_snapshot_lookback_limits_epochs(self, tiny_net):
        scheme = EpochScheme(shift=17, index_bits=2)
        dep = HawkeyeDeployment(tiny_net, TelemetryConfig(scheme=scheme))
        flow = tiny_net.make_flow("A", "B", 200 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(400))
        telem = dep.for_switch("SW")
        assert len(telem.snapshot(tiny_net.sim.now, lookback=1).epochs) <= 1


class TestDeployment:
    def test_partial_deployment(self, line3):
        net = Network(line3)
        dep = HawkeyeDeployment(net, switches=["SW1", "SW3"])
        assert "SW1" in dep and "SW3" in dep and "SW2" not in dep
        with pytest.raises(KeyError):
            dep.for_switch("SW2")

    def test_full_deployment_covers_all(self, line3):
        net = Network(line3)
        dep = HawkeyeDeployment(net)
        assert all(name in dep for name in net.switches)
