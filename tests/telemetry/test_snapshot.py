"""SwitchReport aggregation and size-accounting tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import FlowKey
from repro.telemetry import (
    FLOW_ENTRY_BYTES,
    METER_ENTRY_BYTES,
    PORT_ENTRY_BYTES,
    PORT_STATUS_BYTES,
    EpochData,
    FlowEntry,
    PortEntry,
    SwitchReport,
    merge_reports,
)


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


def entry(i, port=1, pkts=10, paused=2, qd=30, size=10_000):
    return FlowEntry(
        key=key(i), egress_port=port, pkt_count=pkts,
        paused_count=paused, qdepth_sum_pkts=qd, byte_count=size,
    )


def two_epoch_report():
    rep = SwitchReport(switch="SW", collect_time=100)
    e0 = EpochData(epoch_number=0)
    e0.flows[(key(1), 1)] = entry(1, pkts=10, paused=2)
    e0.ports[1] = PortEntry(port=1, pkt_count=10, paused_count=2, qdepth_sum_pkts=40)
    e0.meters[(2, 1)] = 5000
    e1 = EpochData(epoch_number=1)
    e1.flows[(key(1), 1)] = entry(1, pkts=6, paused=1)
    e1.flows[(key(2), 1)] = entry(2, pkts=3, paused=0)
    e1.ports[1] = PortEntry(port=1, pkt_count=9, paused_count=1, qdepth_sum_pkts=18)
    e1.meters[(2, 1)] = 3000
    rep.epochs = [e0, e1]
    rep.port_status = {1: 5000, 2: 0}
    return rep


class TestAggregation:
    def test_agg_flows_sums_epochs(self):
        rep = two_epoch_report()
        agg = rep.agg_flows()
        assert agg[(key(1), 1)].pkt_count == 16
        assert agg[(key(1), 1)].paused_count == 3
        assert agg[(key(2), 1)].pkt_count == 3

    def test_agg_ports_sums_epochs(self):
        agg = two_epoch_report().agg_ports()
        assert agg[1].pkt_count == 19
        assert agg[1].paused_count == 3
        assert agg[1].qdepth_sum_pkts == 58

    def test_agg_meters_sums_epochs(self):
        assert two_epoch_report().agg_meters() == {(2, 1): 8000}

    def test_flow_paused_count(self):
        rep = two_epoch_report()
        assert rep.flow_paused_count(key(1)) == 3
        assert rep.flow_paused_count(key(1), egress_port=1) == 3
        assert rep.flow_paused_count(key(1), egress_port=9) == 0

    def test_avg_qdepth(self):
        agg = two_epoch_report().agg_ports()
        assert agg[1].avg_qdepth_pkts() == pytest.approx(58 / 19)

    def test_merge_rejects_different_flows(self):
        with pytest.raises(ValueError):
            entry(1).merge(entry(2))


class TestSizes:
    def test_entry_sizes(self):
        assert FLOW_ENTRY_BYTES == 30
        assert PORT_ENTRY_BYTES == 17
        assert METER_ENTRY_BYTES == 6
        assert PORT_STATUS_BYTES == 5

    def test_payload_counts_only_nonempty(self):
        rep = two_epoch_report()
        expected = 3 * FLOW_ENTRY_BYTES + 2 * PORT_ENTRY_BYTES + 2 * METER_ENTRY_BYTES + 2 * PORT_STATUS_BYTES
        assert rep.payload_bytes() == expected

    def test_full_dump_dominates_payload(self):
        rep = two_epoch_report()
        full = SwitchReport.full_dump_bytes(flow_slots=4096, num_ports=64, num_epochs=2)
        assert full > rep.payload_bytes()

    def test_full_dump_formula(self):
        full = SwitchReport.full_dump_bytes(flow_slots=10, num_ports=4, num_epochs=2)
        per_epoch = 10 * FLOW_ENTRY_BYTES + 4 * PORT_ENTRY_BYTES + 16 * METER_ENTRY_BYTES
        assert full == 2 * per_epoch + 4 * PORT_STATUS_BYTES

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=128))
    def test_full_dump_monotone(self, epochs, ports):
        a = SwitchReport.full_dump_bytes(1024, ports, epochs)
        b = SwitchReport.full_dump_bytes(1024, ports, epochs + 1)
        assert b > a


class TestMergeReports:
    def test_latest_report_wins(self):
        old = SwitchReport(switch="SW", collect_time=10)
        new = SwitchReport(switch="SW", collect_time=20)
        other = SwitchReport(switch="SX", collect_time=5)
        merged = merge_reports([old, new, other])
        assert merged["SW"] is new
        assert merged["SX"] is other
