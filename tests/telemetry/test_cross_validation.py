"""Cross-validation: the switch telemetry against the omniscient tracer.

The tracer sees every event; the telemetry sees only what its registers
can afford.  Where their scopes overlap they must agree — these tests pin
the consistency contract between the two observers.
"""

import pytest

from repro.sim import Network, NetworkTracer
from repro.telemetry import HawkeyeDeployment
from repro.topology import PortRef, build_line
from repro.units import KB, msec, usec


@pytest.fixture
def observed_run():
    """A cascaded-congestion run observed by telemetry AND tracer."""
    net = Network(build_line(num_switches=3, hosts_per_switch=4))
    deployment = HawkeyeDeployment(net)
    tracer = NetworkTracer(net, sample_queue_every=1)
    srcs = ["H1_0", "H1_1", "H2_0", "H2_1", "H3_1", "H3_2"]
    flows = []
    for i, src in enumerate(srcs):
        f = net.make_flow(src, "H3_0", 300 * KB, usec(1), src_port=10 + i)
        flows.append(f)
        net.start_flow(f)
    net.run(msec(2))
    return net, deployment, tracer, flows


class TestConsistency:
    def test_flow_packet_counts_match_reality(self, observed_run):
        net, deployment, tracer, flows = observed_run
        now = net.sim.now
        # Each flow's packets through its first switch equal packets sent
        # (lossless network: nothing disappears).
        for flow in flows:
            first_switch = net.topology.attachment_of(flow.src_host).node
            report = deployment.for_switch(first_switch).snapshot(now)
            counted = sum(
                e.pkt_count for (k, _p), e in report.agg_flows().items() if k == flow.key
            )
            assert counted == flow.packets_sent

    def test_port_counts_equal_flow_sums(self, observed_run):
        net, deployment, tracer, flows = observed_run
        now = net.sim.now
        for name in net.switches:
            report = deployment.for_switch(name).snapshot(now)
            flow_sum = {}
            for (key, port), entry in report.agg_flows().items():
                flow_sum[port] = flow_sum.get(port, 0) + entry.pkt_count
            for port, entry in report.agg_ports().items():
                assert entry.pkt_count == flow_sum.get(port, 0)

    def test_paused_counts_match_tracer_samples(self, observed_run):
        """Telemetry's paused-enqueue counters equal the tracer's count of
        paused queue samples (the tracer samples every enqueue here)."""
        net, deployment, tracer, flows = observed_run
        now = net.sim.now
        for name in net.switches:
            report = deployment.for_switch(name).snapshot(now)
            telemetry_paused = sum(
                e.paused_count for e in report.agg_ports().values()
            )
            traced_paused = sum(
                1 for s in tracer.queue_samples if s.switch == name and s.paused
            )
            assert telemetry_paused == traced_paused

    def test_pause_rx_counters_match_tracer_events(self, observed_run):
        net, deployment, tracer, flows = observed_run
        now = net.sim.now
        for name in net.switches:
            report = deployment.for_switch(name).snapshot(now)
            telemetry_rx = sum(
                e.pause_rx_count for e in report.agg_ports().values()
            )
            traced_rx = sum(
                1
                for e in tracer.pfc_events
                if e.switch == name and e.direction == "rx" and e.kind == "pause"
            )
            assert telemetry_rx == traced_rx

    def test_meter_volumes_equal_switch_byte_counts(self, observed_run):
        net, deployment, tracer, flows = observed_run
        now = net.sim.now
        for name, switch in net.switches.items():
            report = deployment.for_switch(name).snapshot(now)
            meter_total = sum(report.agg_meters().values())
            assert meter_total == switch.stats.data_bytes
