"""Property-based tests on the flow-table register discipline.

The hash-indexed flow table evicts on collision but evicted entries are
"stored at the controller" (§3.3), so no packet is ever lost from the
telemetry no matter how adversarial the flow set — a conservation law we
check with hypothesis across random flow populations and table sizes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FlowKey, Network, Packet
from repro.telemetry import EpochScheme, HawkeyeDeployment, TelemetryConfig
from repro.topology import Topology
from repro.units import KB, gbps, msec, usec


def star_topology(num_hosts):
    topo = Topology("star")
    topo.add_switch("SW")
    for i in range(num_hosts):
        topo.add_host(f"H{i}", ip=f"10.0.0.{i + 1}")
        topo.add_link(f"H{i}", "SW", gbps(100), usec(1))
    return topo


@settings(max_examples=12, deadline=None)
@given(
    flow_specs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # src host
            st.integers(min_value=1000, max_value=1064),  # src port
            st.integers(min_value=2, max_value=30),  # packets
        ),
        min_size=1,
        max_size=12,
        unique_by=lambda t: (t[0], t[1]),
    ),
    slots=st.sampled_from([1, 2, 8, 64]),
)
def test_no_packet_lost_to_collisions(flow_specs, slots):
    """sum(pkt_count) over the snapshot == packets the switch forwarded,
    for any flow population and any (even degenerate) table size."""
    topo = star_topology(5)
    net = Network(topo)
    deployment = HawkeyeDeployment(
        net, TelemetryConfig(scheme=EpochScheme(), flow_slots=slots)
    )
    expected_pkts = 0
    for src, sport, pkts in flow_specs:
        dst = "H4"
        flow = net.make_flow(f"H{src}", dst, pkts * KB, usec(1), src_port=sport)
        net.start_flow(flow)
        expected_pkts += pkts
    net.run(msec(20))
    report = deployment.for_switch("SW").snapshot(net.sim.now)
    counted = sum(e.pkt_count for e in report.agg_flows().values())
    assert counted == expected_pkts


@settings(max_examples=12, deadline=None)
@given(
    sports=st.lists(
        st.integers(min_value=1, max_value=500), min_size=2, max_size=20, unique=True
    )
)
def test_every_flow_identity_survives(sports):
    """Every distinct 5-tuple appears in the snapshot even with one slot."""
    topo = star_topology(2)
    net = Network(topo)
    deployment = HawkeyeDeployment(
        net, TelemetryConfig(scheme=EpochScheme(), flow_slots=1)
    )
    keys = set()
    for sport in sports:
        flow = net.make_flow("H0", "H1", 5 * KB, usec(1), src_port=sport)
        keys.add(flow.key)
        net.start_flow(flow)
    net.run(msec(20))
    report = deployment.for_switch("SW").snapshot(net.sim.now)
    seen = {k for (k, _p) in report.agg_flows()}
    assert seen == keys
