"""Epoch scheme tests: timestamp bit-slicing, wrap-around IDs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import EpochScheme, nearest_power_of_two_shift
from repro.units import msec, usec


class TestShiftSelection:
    def test_1ms_maps_to_2_pow_20(self):
        assert nearest_power_of_two_shift(msec(1)) == 20  # the paper's example

    def test_100us_maps_to_2_pow_17(self):
        assert nearest_power_of_two_shift(usec(100)) == 17

    def test_2ms_maps_to_2_pow_21(self):
        assert nearest_power_of_two_shift(msec(2)) == 21

    def test_exact_powers(self):
        for shift in (10, 17, 20, 25):
            assert nearest_power_of_two_shift(1 << shift) == shift

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            nearest_power_of_two_shift(0)

    @given(st.integers(min_value=1, max_value=2**40))
    def test_result_within_factor_sqrt2(self, size):
        shift = nearest_power_of_two_shift(size)
        assert (1 << shift) <= 2 * size
        assert (1 << shift) >= size // 2


class TestEpochScheme:
    def test_default_matches_paper(self):
        scheme = EpochScheme()
        assert scheme.epoch_size_ns == 1 << 20  # ~1 ms
        assert scheme.num_epochs == 4
        assert scheme.window_ns == 4 << 20

    def test_from_epoch_size(self):
        scheme = EpochScheme.from_epoch_size(usec(100))
        assert scheme.shift == 17

    def test_epoch_index_is_bit_slice(self):
        scheme = EpochScheme(shift=20, index_bits=2)
        ts = (0b10_11 << 20) | 12345  # epoch number 0b1011
        assert scheme.epoch_number(ts) == 0b1011
        assert scheme.epoch_index(ts) == 0b11
        assert scheme.epoch_id(ts) == 0b10

    def test_paper_example_timestamp_21_20(self):
        # Epoch size 1 ms -> timestamp[21:20] indexes 4 epochs.
        scheme = EpochScheme(shift=20, index_bits=2, id_bits=8)
        assert scheme.epoch_index(1 << 20) == 1
        assert scheme.epoch_index(3 << 20) == 3
        assert scheme.epoch_index(4 << 20) == 0  # wraps

    def test_epoch_id_width(self):
        scheme = EpochScheme(shift=10, index_bits=2, id_bits=8)
        huge = ((1 << 30) - 1) << 12
        assert 0 <= scheme.epoch_id(huge) < 256

    def test_epoch_start_floor(self):
        scheme = EpochScheme(shift=20)
        assert scheme.epoch_start((5 << 20) + 999) == 5 << 20

    def test_recent_epoch_numbers(self):
        scheme = EpochScheme(shift=20, index_bits=2)
        now = 10 << 20
        assert scheme.recent_epoch_numbers(now, 3) == [10, 9, 8]

    def test_recent_epochs_capped_at_ring_size(self):
        scheme = EpochScheme(shift=20, index_bits=2)
        assert len(scheme.recent_epoch_numbers(100 << 20, 99)) == 4

    def test_recent_epochs_no_negatives(self):
        scheme = EpochScheme(shift=20, index_bits=2)
        assert scheme.recent_epoch_numbers(0, 4) == [0]

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_index_always_within_ring(self, ts):
        scheme = EpochScheme(shift=17, index_bits=3)
        assert 0 <= scheme.epoch_index(ts) < 8

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_same_epoch_same_index(self, ts):
        scheme = EpochScheme()
        start = scheme.epoch_start(ts)
        assert scheme.epoch_index(start) == scheme.epoch_index(ts)
        assert scheme.epoch_number(start) == scheme.epoch_number(ts)

    @given(st.integers(min_value=0, max_value=2**46))
    def test_consecutive_epochs_differ_in_index(self, ts):
        scheme = EpochScheme()
        a = scheme.epoch_index(ts)
        b = scheme.epoch_index(ts + scheme.epoch_size_ns)
        assert b == (a + 1) % scheme.num_epochs
