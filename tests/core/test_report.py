"""Diagnosis report type tests."""

import pytest

from repro.core import AnomalyType, Diagnosis, Finding, RootCauseKind
from repro.sim import FlowKey
from repro.topology import PortRef


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


def finding(anomaly, weight=1.0, port=PortRef("SW", 1)):
    return Finding(
        anomaly=anomaly,
        root_cause=RootCauseKind.FLOW_CONTENTION,
        initial_port=port,
        culprit_flows=[(key(1), weight)],
    )


class TestAnomalyType:
    def test_deadlock_classification(self):
        assert AnomalyType.IN_LOOP_DEADLOCK.is_deadlock
        assert AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION.is_deadlock
        assert not AnomalyType.PFC_STORM.is_deadlock
        assert not AnomalyType.NORMAL_CONTENTION.is_deadlock

    def test_values_are_stable_identifiers(self):
        assert AnomalyType.MICRO_BURST_INCAST.value == "pfc-backpressure-flow-contention"


class TestFinding:
    def test_severity_ordering(self):
        deadlock = finding(AnomalyType.IN_LOOP_DEADLOCK)
        storm = finding(AnomalyType.PFC_STORM)
        burst = finding(AnomalyType.MICRO_BURST_INCAST)
        contention = finding(AnomalyType.NORMAL_CONTENTION)
        assert deadlock.severity > storm.severity > burst.severity > contention.severity

    def test_culprit_helpers(self):
        f = Finding(
            anomaly=AnomalyType.MICRO_BURST_INCAST,
            root_cause=RootCauseKind.FLOW_CONTENTION,
            initial_port=PortRef("SW", 1),
            culprit_flows=[(key(1), 5.0), (key(2), 3.0)],
        )
        assert f.culprit_keys() == [key(1), key(2)]
        assert f.culprit_strength == 8.0

    def test_describe_includes_loop_and_injector(self):
        f = Finding(
            anomaly=AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION,
            root_cause=RootCauseKind.HOST_PFC_INJECTION,
            initial_port=PortRef("SW2", 9),
            injecting_source="H2_1",
            loop=[PortRef("SW1", 1), PortRef("SW2", 2)],
        )
        text = f.describe()
        assert "H2_1" in text and "loop" in text and "SW2.P9" in text


class TestDiagnosis:
    def test_primary_prefers_severity(self):
        d = Diagnosis(
            victim=key(0),
            findings=[
                finding(AnomalyType.NORMAL_CONTENTION),
                finding(AnomalyType.PFC_STORM),
            ],
        )
        assert d.primary().anomaly is AnomalyType.PFC_STORM
        assert d.anomaly is AnomalyType.PFC_STORM

    def test_primary_ties_broken_by_culprit_strength(self):
        weak = finding(AnomalyType.IN_LOOP_DEADLOCK, weight=1.0, port=PortRef("A", 1))
        strong = finding(AnomalyType.IN_LOOP_DEADLOCK, weight=9.0, port=PortRef("B", 1))
        d = Diagnosis(victim=key(0), findings=[weak, strong])
        assert d.primary().initial_port == PortRef("B", 1)

    def test_empty_diagnosis_placeholder(self):
        d = Diagnosis(victim=key(0))
        assert d.primary().anomaly is AnomalyType.UNKNOWN
        assert "no anomaly identified" in d.describe()

    def test_describe_orders_by_severity(self):
        d = Diagnosis(
            victim=key(0),
            findings=[
                finding(AnomalyType.NORMAL_CONTENTION),
                finding(AnomalyType.IN_LOOP_DEADLOCK),
            ],
        )
        text = d.describe()
        assert text.index("in-loop-deadlock") < text.index("normal-flow-contention")
