"""Algorithm 2 (diagnosis procedure) tests on hand-built graphs."""

import pytest

from repro.core import (
    AnnotatedGraph,
    AnomalyType,
    Diagnoser,
    DiagnoserConfig,
    EdgeKind,
    ProvenanceGraph,
    RootCauseKind,
)
from repro.core.build import FlowPortMeta, PortMeta
from repro.sim import FlowKey
from repro.topology import PortRef


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


VICTIM = key(0)


def P(name, port=1):
    return PortRef(name, port)


def annotate(graph, port_meta, flow_meta=None):
    ann = AnnotatedGraph(graph=graph, window_ns=1 << 20)
    ann.port_meta = port_meta
    ann.flow_port_meta = flow_meta or {}
    return ann


def backpressure_graph(contention=True, deep_queue=10.0):
    g = ProvenanceGraph()
    g.add_edge(VICTIM, P("A"), EdgeKind.FLOW_PORT, 6.0)
    g.add_edge(P("A"), P("B"), EdgeKind.PORT_PORT, 10.0)
    g.add_edge(P("B"), P("C"), EdgeKind.PORT_PORT, 20.0)
    meta = {
        P("A"): PortMeta(paused_num=6, avg_qdepth_pkts=deep_queue),
        P("B"): PortMeta(paused_num=8, avg_qdepth_pkts=deep_queue),
        P("C"): PortMeta(paused_num=0, avg_qdepth_pkts=deep_queue,
                         peer=PortRef("HOSTX", 1), peer_is_host=True),
    }
    if contention:
        g.add_edge(P("C"), key(1), EdgeKind.PORT_FLOW, 30.0)
        g.add_edge(P("C"), key(2), EdgeKind.PORT_FLOW, 25.0)
        g.add_edge(P("C"), key(3), EdgeKind.PORT_FLOW, -55.0)
    else:
        meta[P("C")].paused_num = 4  # paused by its host peer: injection
    return annotate(g, meta)


class TestBackpressureAndStorm:
    def test_micro_burst_diagnosed(self):
        ann = backpressure_graph(contention=True)
        diag = Diagnoser().diagnose(ann, VICTIM)
        primary = diag.primary()
        assert primary.anomaly is AnomalyType.MICRO_BURST_INCAST
        assert primary.root_cause is RootCauseKind.FLOW_CONTENTION
        assert primary.initial_port == P("C")
        assert primary.culprit_keys() == [key(1), key(2)]
        assert primary.pfc_path == [P("A"), P("B"), P("C")]

    def test_storm_diagnosed_with_injector(self):
        ann = backpressure_graph(contention=False)
        diag = Diagnoser().diagnose(ann, VICTIM)
        primary = diag.primary()
        assert primary.anomaly is AnomalyType.PFC_STORM
        assert primary.root_cause is RootCauseKind.HOST_PFC_INJECTION
        assert primary.injecting_source == "HOSTX"

    def test_culprits_sorted_by_weight(self):
        ann = backpressure_graph(contention=True)
        primary = Diagnoser().diagnose(ann, VICTIM).primary()
        weights = [w for _, w in primary.culprit_flows]
        assert weights == sorted(weights, reverse=True)

    def test_small_contention_filtered_by_qdepth_share(self):
        """Micro-queueing noise below 10% of the port depth is not a root
        cause; with nothing else the port must be read as injection."""
        ann = backpressure_graph(contention=True, deep_queue=1000.0)
        ann.port_meta[P("C")].paused_num = 4
        diag = Diagnoser().diagnose(ann, VICTIM)
        assert diag.primary().root_cause is RootCauseKind.HOST_PFC_INJECTION

    def test_victim_not_paused_no_pfc_findings(self):
        g = ProvenanceGraph()
        g.add_edge(P("Q"), key(1), EdgeKind.PORT_FLOW, 12.0)
        g.add_edge(P("Q"), VICTIM, EdgeKind.PORT_FLOW, -12.0)
        ann = annotate(
            g,
            {P("Q"): PortMeta(avg_qdepth_pkts=20.0)},
            {(VICTIM, P("Q")): FlowPortMeta(pkt_count=10),
             (key(1), P("Q")): FlowPortMeta(pkt_count=100)},
        )
        diag = Diagnoser().diagnose(ann, VICTIM)
        primary = diag.primary()
        assert primary.anomaly is AnomalyType.NORMAL_CONTENTION
        assert primary.culprit_keys() == [key(1)]

    def test_empty_graph_unknown(self):
        ann = annotate(ProvenanceGraph(), {})
        diag = Diagnoser().diagnose(ann, VICTIM)
        assert diag.primary().anomaly is AnomalyType.UNKNOWN
        assert not diag.findings


class TestDeadlocks:
    def loop_ann(self, escape=None):
        g = ProvenanceGraph()
        ports = [P("SW1"), P("SW2"), P("SW3"), P("SW4")]
        for i, p in enumerate(ports):
            g.add_edge(p, ports[(i + 1) % 4], EdgeKind.PORT_PORT, 10.0)
        g.add_edge(VICTIM, ports[0], EdgeKind.FLOW_PORT, 4.0)
        meta = {p: PortMeta(paused_num=5, avg_qdepth_pkts=30.0) for p in ports}
        if escape is None:
            g.add_edge(ports[1], key(1), EdgeKind.PORT_FLOW, 40.0)
            g.add_edge(ports[1], key(2), EdgeKind.PORT_FLOW, 35.0)
        else:
            term = P("SW2", 9)
            g.add_edge(ports[1], term, EdgeKind.PORT_PORT, 3.0)
            meta[term] = PortMeta(
                paused_num=2 if escape == "injection" else 0,
                avg_qdepth_pkts=30.0,
                peer=PortRef("H2_1", 1),
                peer_is_host=True,
            )
            if escape == "contention":
                g.add_edge(term, key(3), EdgeKind.PORT_FLOW, 22.0)
        return annotate(g, meta), ports

    def test_in_loop_deadlock(self):
        ann, ports = self.loop_ann()
        primary = Diagnoser().diagnose(ann, VICTIM).primary()
        assert primary.anomaly is AnomalyType.IN_LOOP_DEADLOCK
        assert primary.initial_port == ports[1]
        assert set(primary.culprit_keys()) == {key(1), key(2)}
        assert set(primary.loop) == set(ports)

    def test_out_of_loop_injection(self):
        ann, _ = self.loop_ann(escape="injection")
        primary = Diagnoser().diagnose(ann, VICTIM).primary()
        assert primary.anomaly is AnomalyType.OUT_OF_LOOP_DEADLOCK_INJECTION
        assert primary.injecting_source == "H2_1"
        assert primary.initial_port == P("SW2", 9)

    def test_out_of_loop_contention(self):
        ann, _ = self.loop_ann(escape="contention")
        primary = Diagnoser().diagnose(ann, VICTIM).primary()
        assert primary.anomaly is AnomalyType.OUT_OF_LOOP_DEADLOCK_CONTENTION
        assert primary.culprit_keys() == [key(3)]

    def test_in_loop_without_contention_undetermined(self):
        g = ProvenanceGraph()
        ports = [P("SW1"), P("SW2"), P("SW3")]
        for i, p in enumerate(ports):
            g.add_edge(p, ports[(i + 1) % 3], EdgeKind.PORT_PORT, 10.0)
        g.add_edge(VICTIM, ports[0], EdgeKind.FLOW_PORT, 4.0)
        ann = annotate(g, {p: PortMeta(paused_num=5) for p in ports})
        primary = Diagnoser().diagnose(ann, VICTIM).primary()
        assert primary.anomaly is AnomalyType.IN_LOOP_DEADLOCK
        assert primary.root_cause is RootCauseKind.UNDETERMINED

    def test_deadlock_outranks_contention_in_primary(self):
        ann, ports = self.loop_ann()
        # Add a separate normal-contention branch: deadlock must win.
        g = ann.graph
        g.add_edge(VICTIM, P("X"), EdgeKind.FLOW_PORT, 1.0)
        ann.port_meta[P("X")] = PortMeta(paused_num=1, avg_qdepth_pkts=5.0,
                                         peer=PortRef("HX", 1), peer_is_host=True)
        diag = Diagnoser().diagnose(ann, VICTIM)
        assert diag.primary().anomaly.is_deadlock


class TestPortOnlyFallback:
    def test_victim_path_ports_entry_point(self):
        """Without flow telemetry the diagnosis starts from port-level
        paused counters on the victim's known path (port-only ablation)."""
        g = ProvenanceGraph()
        g.add_edge(P("A"), P("B"), EdgeKind.PORT_PORT, 10.0)
        meta = {
            P("A"): PortMeta(paused_num=5, avg_qdepth_pkts=10.0),
            P("B"): PortMeta(paused_num=0, avg_qdepth_pkts=10.0,
                             peer=PortRef("H", 1), peer_is_host=True),
        }
        g.add_edge(P("B"), key(1), EdgeKind.PORT_FLOW, 15.0)
        ann = annotate(g, meta)
        diag = Diagnoser().diagnose(ann, VICTIM, victim_path_ports=[P("A")])
        assert diag.primary().anomaly is AnomalyType.MICRO_BURST_INCAST

    def test_no_fallback_without_path(self):
        g = ProvenanceGraph()
        g.add_edge(P("A"), P("B"), EdgeKind.PORT_PORT, 10.0)
        ann = annotate(g, {P("A"): PortMeta(paused_num=5), P("B"): PortMeta()})
        diag = Diagnoser().diagnose(ann, VICTIM)
        assert not diag.findings


class TestSpreadingFlows:
    def test_flow_paused_on_two_hops_flagged(self):
        ann = backpressure_graph(contention=True)
        g = ann.graph
        spreader = key(7)
        g.add_edge(spreader, P("A"), EdgeKind.FLOW_PORT, 3.0)
        g.add_edge(spreader, P("B"), EdgeKind.FLOW_PORT, 5.0)
        diag = Diagnoser().diagnose(ann, VICTIM)
        assert spreader in diag.primary().spreading_flows

    def test_victim_itself_not_listed_as_spreader(self):
        ann = backpressure_graph(contention=True)
        ann.graph.add_edge(VICTIM, P("B"), EdgeKind.FLOW_PORT, 2.0)
        diag = Diagnoser().diagnose(ann, VICTIM)
        assert VICTIM not in diag.primary().spreading_flows


class TestReportTypes:
    def test_describe_smoke(self):
        ann = backpressure_graph(contention=True)
        diag = Diagnoser().diagnose(ann, VICTIM)
        text = diag.describe()
        assert "pfc-backpressure" in text
        assert str(P("C")) in text

    def test_max_culprits_respected(self):
        g = ProvenanceGraph()
        g.add_edge(VICTIM, P("A"), EdgeKind.FLOW_PORT, 6.0)
        meta = {P("A"): PortMeta(paused_num=0, avg_qdepth_pkts=1.0)}
        for i in range(1, 30):
            g.add_edge(P("A"), key(i), EdgeKind.PORT_FLOW, float(i))
        ann = annotate(g, meta)
        diag = Diagnoser(DiagnoserConfig(max_culprits=5)).diagnose(ann, VICTIM)
        assert len(diag.primary().culprit_flows) <= 5
