"""Contention-cause sub-analysis tests (Algorithm 2, lines 8-11)."""

import pytest

from repro.core import (
    AnnotatedGraph,
    AnomalyType,
    ContentionKind,
    Finding,
    ProvenanceGraph,
    RootCauseKind,
    classify_contention,
    ecmp_imbalance_ratio,
    flow_profiles,
)
from repro.core.build import FlowPortMeta, PortMeta
from repro.sim import FlowKey
from repro.topology import PortRef
from repro.units import msec


def key(i, dst="10.0.0.9"):
    return FlowKey("10.0.0.1", dst, 1000 + i, 4791)


PORT = PortRef("SW", 1)


def annotated_with(flows, window_ns=msec(1), extra_ports=()):
    ann = AnnotatedGraph(graph=ProvenanceGraph(), window_ns=window_ns)
    ann.port_meta[PORT] = PortMeta(peer=PortRef("SW2", 1))
    for ref, peer, is_host in extra_ports:
        ann.port_meta[ref] = PortMeta(peer=peer, peer_is_host=is_host)
    for k, port, nbytes in flows:
        ann.flow_port_meta[(k, port)] = FlowPortMeta(
            pkt_count=max(1, nbytes // 1000), byte_count=nbytes
        )
    return ann


def contention_finding(culprits):
    return Finding(
        anomaly=AnomalyType.MICRO_BURST_INCAST,
        root_cause=RootCauseKind.FLOW_CONTENTION,
        initial_port=PORT,
        culprit_flows=[(k, 10.0) for k in culprits],
    )


class TestFlowProfiles:
    def test_rates_and_shares(self):
        ann = annotated_with([(key(1), PORT, 600_000), (key(2), PORT, 200_000)])
        profiles = flow_profiles(ann, PORT, [key(1), key(2)])
        assert profiles[0].key == key(1)
        assert profiles[0].traffic_share == pytest.approx(0.75)
        # 600 KB over 1 ms = 600 MB/s
        assert profiles[0].rate_bytes_per_sec == pytest.approx(6e8)

    def test_missing_meta_skipped(self):
        ann = annotated_with([(key(1), PORT, 1000)])
        assert flow_profiles(ann, PORT, [key(1), key(9)]) and len(
            flow_profiles(ann, PORT, [key(9)])
        ) == 0


class TestClassification:
    def test_incast_bursts(self):
        flows = [(key(i), PORT, 100_000) for i in range(1, 5)]
        ann = annotated_with(flows)
        analysis = classify_contention(ann, contention_finding([key(i) for i in range(1, 5)]))
        assert analysis.kind is ContentionKind.INCAST_BURSTS
        assert analysis.shared_destination == "10.0.0.9"

    def test_elephant_flow(self):
        ann = annotated_with([(key(1), PORT, 900_000), (key(2), PORT, 50_000)])
        analysis = classify_contention(ann, contention_finding([key(1), key(2)]))
        assert analysis.kind is ContentionKind.ELEPHANT_FLOW

    def test_mixed_when_destinations_differ(self):
        flows = [
            (key(1, dst="10.0.0.8"), PORT, 100_000),
            (key(2, dst="10.0.0.9"), PORT, 100_000),
            (key(3, dst="10.0.0.7"), PORT, 60_000),  # background sharer
        ]
        ann = annotated_with(flows)
        culprits = [key(1, dst="10.0.0.8"), key(2, dst="10.0.0.9")]
        analysis = classify_contention(ann, contention_finding(culprits))
        assert analysis.kind is ContentionKind.MIXED

    def test_none_without_culprits(self):
        ann = annotated_with([])
        finding = contention_finding([])
        assert classify_contention(ann, finding).kind is ContentionKind.NONE

    def test_describe(self):
        ann = annotated_with([(key(1), PORT, 500_000)])
        text = classify_contention(ann, contention_finding([key(1)])).describe()
        assert "Gbps" in text


class TestEcmpImbalance:
    def test_ratio_against_siblings(self):
        sibling = PortRef("SW", 2)
        ann = annotated_with(
            [(key(1), PORT, 300_000), (key(2), sibling, 100_000)],
            extra_ports=[(sibling, PortRef("SW3", 1), False)],
        )
        ratio = ecmp_imbalance_ratio(ann, PORT, topology=None)
        assert ratio == pytest.approx(3.0)

    def test_host_facing_port_has_no_ratio(self):
        host_port = PortRef("SW", 3)
        ann = annotated_with(
            [(key(1), host_port, 1000)],
            extra_ports=[(host_port, PortRef("H", 1), True)],
        )
        assert ecmp_imbalance_ratio(ann, host_port, topology=None) is None

    def test_no_siblings_returns_none(self):
        ann = annotated_with([(key(1), PORT, 1000)])
        assert ecmp_imbalance_ratio(ann, PORT, topology=None) is None


class TestIntegration:
    def test_incast_scenario_classified_as_bursts(self):
        from repro.experiments import RunConfig, run_scenario
        from repro.workloads import incast_backpressure_scenario

        scenario = incast_backpressure_scenario(seed=1)
        result = run_scenario(scenario, RunConfig())
        outcome = result.primary_outcome()
        analysis = classify_contention(
            outcome.annotated, outcome.diagnosis.primary(), scenario.network.topology
        )
        assert analysis.kind in (ContentionKind.INCAST_BURSTS, ContentionKind.MIXED)
        assert analysis.profiles
