"""Provenance graph structure tests."""

import pytest

from repro.core import EdgeKind, ProvenanceGraph
from repro.sim import FlowKey
from repro.topology import PortRef


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


@pytest.fixture
def small_graph():
    g = ProvenanceGraph()
    p1, p2, p3 = PortRef("SW1", 1), PortRef("SW2", 3), PortRef("SW4", 1)
    g.add_edge(p1, p2, EdgeKind.PORT_PORT, 5.0)
    g.add_edge(p2, p3, EdgeKind.PORT_PORT, 7.0)
    g.add_edge(key(1), p1, EdgeKind.FLOW_PORT, 12.0)
    g.add_edge(p3, key(2), EdgeKind.PORT_FLOW, 3.5)
    g.add_edge(p3, key(3), EdgeKind.PORT_FLOW, -2.0)
    return g, (p1, p2, p3)


class TestConstruction:
    def test_nodes_registered_implicitly(self, small_graph):
        g, (p1, p2, p3) = small_graph
        assert {p1, p2, p3} == g.ports
        assert {key(1), key(2), key(3)} == g.flows

    def test_explicit_node_add(self):
        g = ProvenanceGraph()
        g.add_port(PortRef("S", 1))
        g.add_flow(key(1))
        assert PortRef("S", 1) in g.ports and key(1) in g.flows
        assert g.out_edges(PortRef("S", 1)) == []


class TestQueries:
    def test_out_edges_by_kind(self, small_graph):
        g, (p1, p2, p3) = small_graph
        assert len(g.out_edges(p2, EdgeKind.PORT_PORT)) == 1
        assert len(g.out_edges(p3, EdgeKind.PORT_FLOW)) == 2
        assert g.out_edges(p3, EdgeKind.PORT_PORT) == []

    def test_in_edges(self, small_graph):
        g, (p1, p2, p3) = small_graph
        assert len(g.in_edges(p1, EdgeKind.FLOW_PORT)) == 1
        assert len(g.in_edges(p3, EdgeKind.PORT_PORT)) == 1

    def test_weight_lookup(self, small_graph):
        g, (p1, p2, p3) = small_graph
        assert g.weight(p1, p2) == 5.0
        assert g.weight(p2, p1) is None

    def test_port_out_degree_counts_only_port_edges(self, small_graph):
        g, (p1, p2, p3) = small_graph
        assert g.port_out_degree(p1) == 1
        assert g.port_out_degree(p3) == 0  # its edges are port-flow

    def test_port_successors(self, small_graph):
        g, (p1, p2, p3) = small_graph
        assert g.port_successors(p1) == [p2]

    def test_flow_port_weight(self, small_graph):
        g, (p1, _, _) = small_graph
        assert g.flow_port_weight(key(1), p1) == 12.0
        assert g.flow_port_weight(key(2), p1) == 0.0

    def test_port_flow_weights(self, small_graph):
        g, (_, _, p3) = small_graph
        assert g.port_flow_weights(p3) == {key(2): 3.5, key(3): -2.0}

    def test_ports_pausing_flow(self, small_graph):
        g, (p1, _, _) = small_graph
        assert g.ports_pausing_flow(key(1)) == [(p1, 12.0)]

    def test_has_port_level_edges(self, small_graph):
        g, _ = small_graph
        assert g.has_port_level_edges()
        assert not ProvenanceGraph().has_port_level_edges()

    def test_edges_iterator_filtered(self, small_graph):
        g, _ = small_graph
        assert len(list(g.edges())) == 5
        assert len(list(g.edges(EdgeKind.PORT_FLOW))) == 2


class TestRendering:
    def test_to_dot_contains_nodes_and_styles(self, small_graph):
        g, (p1, _, _) = small_graph
        dot = g.to_dot()
        assert "digraph provenance" in dot
        assert str(p1) in dot
        assert "dashed" in dot and "dotted" in dot
        assert "red" in dot  # positive port-flow edge highlighted

    def test_summary(self, small_graph):
        g, _ = small_graph
        text = g.summary()
        assert "ports=3" in text and "flows=3" in text
        assert "port-port=2" in text
