"""Table 2 signature predicate tests on hand-built annotated graphs."""

import pytest

from repro.core import (
    AnnotatedGraph,
    EdgeKind,
    ProvenanceGraph,
    burst_flow,
    find_port_loops,
    has_flow_contention,
    match_contention_masked_storm,
    match_in_loop_deadlock,
    match_micro_burst_incast,
    match_normal_contention,
    match_out_of_loop_deadlock,
    match_pfc_storm,
    positive_contributors,
    terminal_ports_reachable,
)
from repro.core.build import FlowPortMeta, PortMeta
from repro.sim import FlowKey
from repro.topology import PortRef


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


def P(name, port=1):
    return PortRef(name, port)


def annotate(graph, port_meta=None, flow_meta=None):
    ann = AnnotatedGraph(graph=graph, window_ns=1 << 20)
    ann.port_meta = port_meta or {}
    ann.flow_port_meta = flow_meta or {}
    return ann


def chain_graph(with_contention=True, terminal_paused=False):
    """A PFC chain P(A) -> P(B) -> P(C); contention or injection at P(C)."""
    g = ProvenanceGraph()
    g.add_edge(P("A"), P("B"), EdgeKind.PORT_PORT, 10.0)
    g.add_edge(P("B"), P("C"), EdgeKind.PORT_PORT, 20.0)
    g.add_edge(key(0), P("A"), EdgeKind.FLOW_PORT, 5.0)
    meta = {
        P("A"): PortMeta(paused_num=5),
        P("B"): PortMeta(paused_num=8),
        P("C"): PortMeta(paused_num=3 if terminal_paused else 0),
    }
    flow_meta = {}
    if with_contention:
        g.add_edge(P("C"), key(1), EdgeKind.PORT_FLOW, 30.0)
        g.add_edge(P("C"), key(2), EdgeKind.PORT_FLOW, -30.0)
        flow_meta[(key(1), P("C"))] = FlowPortMeta(pkt_count=100, byte_count=100_000)
        flow_meta[(key(2), P("C"))] = FlowPortMeta(pkt_count=10, byte_count=10_000)
    return annotate(g, meta, flow_meta)


def loop_graph(escape=False, escape_contention=False):
    """A 4-port loop; optionally one member escapes to a terminal."""
    g = ProvenanceGraph()
    ports = [P("SW1"), P("SW2"), P("SW3"), P("SW4")]
    for i, p in enumerate(ports):
        g.add_edge(p, ports[(i + 1) % 4], EdgeKind.PORT_PORT, 10.0)
    g.add_edge(key(0), ports[0], EdgeKind.FLOW_PORT, 4.0)
    meta = {p: PortMeta(paused_num=5) for p in ports}
    flow_meta = {}
    if escape:
        term = P("SW2", 9)
        g.add_edge(ports[1], term, EdgeKind.PORT_PORT, 3.0)
        meta[term] = PortMeta(paused_num=2, peer_is_host=True)
        if escape_contention:
            g.add_edge(term, key(3), EdgeKind.PORT_FLOW, 12.0)
            flow_meta[(key(3), term)] = FlowPortMeta(pkt_count=50, byte_count=50_000)
    else:
        g.add_edge(ports[1], key(1), EdgeKind.PORT_FLOW, 9.0)
        flow_meta[(key(1), ports[1])] = FlowPortMeta(pkt_count=50, byte_count=50_000)
    return annotate(g, meta, flow_meta), ports


class TestHelpers:
    def test_positive_contributors(self):
        ann = chain_graph()
        assert positive_contributors(ann.graph, P("C")) == [key(1)]

    def test_has_flow_contention(self):
        ann = chain_graph()
        assert has_flow_contention(ann.graph, P("C"))
        assert not has_flow_contention(ann.graph, P("A"))

    def test_burst_flow_by_traffic_share(self):
        ann = chain_graph()
        assert burst_flow(ann, key(1), P("C"))  # 100 KB of 110 KB
        assert not burst_flow(ann, key(9), P("C"))  # unknown flow

    def test_terminal_ports_reachable(self):
        ann = chain_graph()
        assert terminal_ports_reachable(ann.graph, P("A")) == [P("C")]


class TestLoopDetection:
    def test_no_loops_in_chain(self):
        assert find_port_loops(chain_graph().graph) == []

    def test_loop_found(self):
        ann, ports = loop_graph()
        loops = find_port_loops(ann.graph)
        assert len(loops) == 1
        assert set(loops[0]) == set(ports)

    def test_loop_with_escape_still_found(self):
        ann, ports = loop_graph(escape=True)
        loops = find_port_loops(ann.graph)
        assert any(set(ports) == set(l) for l in loops)

    def test_self_loop(self):
        g = ProvenanceGraph()
        g.add_edge(P("X"), P("X"), EdgeKind.PORT_PORT, 1.0)
        assert find_port_loops(g) == [[P("X")]]


class TestTable2Signatures:
    def test_micro_burst_incast(self):
        ann = chain_graph(with_contention=True)
        assert match_micro_burst_incast(ann) == P("C")
        assert match_pfc_storm(ann) is None

    def test_pfc_storm(self):
        ann = chain_graph(with_contention=False, terminal_paused=True)
        assert match_pfc_storm(ann) == P("C")
        assert match_micro_burst_incast(ann) is None

    def test_in_loop_deadlock(self):
        ann, ports = loop_graph()
        loop = match_in_loop_deadlock(ann)
        assert loop is not None and set(loop) == set(ports)

    def test_out_of_loop_deadlock_injection(self):
        ann, ports = loop_graph(escape=True, escape_contention=False)
        match = match_out_of_loop_deadlock(ann)
        assert match is not None
        loop, terminal, contention = match
        assert terminal == P("SW2", 9)
        assert not contention
        # The closed-loop signature must NOT fire for this graph.
        assert match_in_loop_deadlock(ann) is None

    def test_out_of_loop_deadlock_contention(self):
        ann, _ = loop_graph(escape=True, escape_contention=True)
        match = match_out_of_loop_deadlock(ann)
        assert match is not None and match[2] is True

    def test_normal_contention(self):
        g = ProvenanceGraph()
        g.add_edge(P("T"), key(1), EdgeKind.PORT_FLOW, 7.0)
        ann = annotate(g, {P("T"): PortMeta()}, {})
        assert match_normal_contention(ann) == P("T")

    def test_normal_contention_excluded_when_pfc_present(self):
        ann = chain_graph()
        assert match_normal_contention(ann) is None


class TestContentionMaskedStorm:
    """The fuzzer-promoted compound row: paused host-facing terminal port
    *with* positive contention contributors — exclusive rows in the
    paper's Table 2, simultaneous here."""

    def _masked(self):
        ann = chain_graph(with_contention=True)
        ann.port_meta[P("C")] = PortMeta(paused_num=3, peer_is_host=True)
        return ann

    def test_matches_paused_host_port_with_contention(self):
        assert match_contention_masked_storm(self._masked()) == P("C")

    def test_disambiguates_against_table2_rows(self):
        ann = self._masked()
        # Plain storm needs *no* contention at the terminal; plain incast
        # claims the same graph, which is exactly why the diagnoser must
        # consult the compound row first.
        assert match_pfc_storm(ann) is None
        assert match_micro_burst_incast(ann) == P("C")

    def test_requires_pause_evidence(self):
        ann = chain_graph(with_contention=True)
        ann.port_meta[P("C")] = PortMeta(paused_num=0, peer_is_host=True)
        assert match_contention_masked_storm(ann) is None

    def test_requires_host_peer(self):
        # Paused and contended, but the terminal faces a switch: the pause
        # came from fabric backpressure, not NIC injection.
        ann = chain_graph(with_contention=True)
        ann.port_meta[P("C")] = PortMeta(paused_num=3, peer_is_host=False)
        assert match_contention_masked_storm(ann) is None

    def test_requires_contention(self):
        ann = chain_graph(with_contention=False, terminal_paused=True)
        ann.port_meta[P("C")] = PortMeta(paused_num=3, peer_is_host=True)
        assert match_contention_masked_storm(ann) is None
        assert match_pfc_storm(ann) == P("C")
