"""Columnar analysis-plane kernels vs the authoritative scalar path.

``repro.core.columnar`` rebuilds the queue replay over flat int64
columns.  Three contracts pin it down:

- the vectorized replay ordering (``replay_ids``) reproduces the scalar
  ``replay_queue`` merge *exactly* — same flow at every position;
- the fully columnar wait weights are **bit-identical** to the legacy
  vectorized path that walked an explicit ``replay_queue`` sequence
  (both now share :func:`~repro.core.columnar.wait_weights_from_ids`,
  so this checks the index algebra, not float luck);
- against the pure-Python reference walk, weights agree to float
  tolerance and the *signs* that drive verdicts agree exactly, with the
  end-to-end diagnosis equality covered in the scenario differential
  below.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import columnar, contribution, replay_queue
from repro.core.replay import (
    _wait_weights_numpy,
    _wait_weights_python,
)
from repro.sim import FlowKey
from repro.telemetry import FlowEntry

pytestmark = pytest.mark.skipif(
    not columnar.HAVE_NUMPY, reason="columnar path needs numpy"
)


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


def entry(i, pkts, paused=0, qdepth_avg=0.0, port=1):
    return FlowEntry(
        key=key(i),
        egress_port=port,
        pkt_count=pkts,
        paused_count=paused,
        qdepth_sum_pkts=int(qdepth_avg * pkts),
        byte_count=pkts * 1000,
    )


counts_strategy = st.lists(
    st.integers(min_value=1, max_value=40), min_size=1, max_size=8
)


class TestReplayIds:
    @settings(max_examples=60, deadline=None)
    @given(counts=counts_strategy, window_ns=st.sampled_from([1, 100, 1000, 9999]))
    def test_matches_scalar_replay_queue(self, counts, window_ns):
        """Same flow at every replay position as the scalar merge."""
        entries = [entry(i, pkts=c) for i, c in enumerate(counts)]
        scalar = replay_queue(entries, window_ns)
        ordering = sorted(range(len(entries)), key=lambda i: entries[i].key)
        ids = columnar.replay_ids([counts[i] for i in ordering], window_ns)
        vector_keys = [entries[ordering[f]].key for f in ids.tolist()]
        assert vector_keys == [k for _, k in scalar]

    def test_preserves_within_flow_order_on_ties(self):
        # window 0: every synthetic time is 0, so order + stability decide.
        ids = columnar.replay_ids([3, 2], 0)
        assert ids.tolist() == [0, 0, 0, 1, 1]


class TestWaitWeights:
    @settings(max_examples=40, deadline=None)
    @given(
        counts=counts_strategy,
        depths=st.lists(st.integers(min_value=0, max_value=30), min_size=8, max_size=8),
    )
    def test_bit_identical_to_legacy_vectorized_path(self, counts, depths):
        """Columnar == the sequence-walking numpy path, float for float."""
        entries = [
            entry(i, pkts=c, qdepth_avg=depths[i]) for i, c in enumerate(counts)
        ]
        cnt = {e.key: e.pkt_count for e in entries}
        depth = {e.key: int(round(e.avg_qdepth_pkts())) for e in entries}
        pkt_num = dict(cnt)
        sequence = replay_queue(entries, 1000, counts=cnt)
        legacy = _wait_weights_numpy(entries, sequence, depth, pkt_num)
        col = columnar.wait_weights_columnar(entries, cnt, depth, pkt_num, 1000)
        assert col == legacy  # exact: same kernel, same float order

    @settings(max_examples=40, deadline=None)
    @given(
        counts=counts_strategy,
        depths=st.lists(st.integers(min_value=0, max_value=30), min_size=8, max_size=8),
    )
    def test_close_to_scalar_reference_walk(self, counts, depths):
        entries = [
            entry(i, pkts=c, qdepth_avg=depths[i]) for i, c in enumerate(counts)
        ]
        cnt = {e.key: e.pkt_count for e in entries}
        depth = {e.key: int(round(e.avg_qdepth_pkts())) for e in entries}
        pkt_num = dict(cnt)
        sequence = replay_queue(entries, 1000, counts=cnt)
        ref_in, ref_out = _wait_weights_python(entries, sequence, depth, pkt_num)
        col_in, col_out = columnar.wait_weights_columnar(
            entries, cnt, depth, pkt_num, 1000
        )
        for k in ref_in:
            assert col_in[k] == pytest.approx(ref_in[k], abs=1e-9)
            assert col_out[k] == pytest.approx(ref_out[k], abs=1e-9)


class TestGating:
    def test_small_replays_stay_scalar(self):
        assert not columnar.columnar_enabled(columnar.MIN_COLUMNAR_PACKETS - 1)
        assert columnar.columnar_enabled(columnar.MIN_COLUMNAR_PACKETS)

    def test_force_scalar_disables_and_restores(self):
        assert columnar.columnar_enabled(10_000)
        with columnar.force_scalar():
            assert not columnar.columnar_enabled(10_000)
        assert columnar.columnar_enabled(10_000)

    def test_contribution_identical_verdict_both_paths(self):
        """Signs (contributor vs victim) agree between the two paths on a
        replay big enough to take the columnar branch."""
        entries = [
            entry(1, pkts=80, qdepth_avg=12.0),
            entry(2, pkts=6, qdepth_avg=12.0),
        ]
        fast = contribution(entries, window_ns=1000)
        with columnar.force_scalar():
            slow = contribution(entries, window_ns=1000)
        assert fast.keys() == slow.keys()
        for k in fast:
            assert fast[k] == pytest.approx(slow[k], abs=1e-9)
            assert (fast[k] > 0) == (slow[k] > 0)

    def test_no_numpy_env_gates_module_off(self):
        """REPRO_NO_NUMPY=1 must leave the module importable with the
        columnar path disabled (the CI scalar-fallback leg)."""
        code = (
            "from repro.core import columnar, contribution;"
            "from repro.telemetry import FlowEntry;"
            "from repro.sim import FlowKey;"
            "assert not columnar.HAVE_NUMPY;"
            "assert not columnar.columnar_enabled(10**6);"
            "e = FlowEntry(key=FlowKey('a','b',1,2), egress_port=1,"
            "              pkt_count=100, qdepth_sum_pkts=500, byte_count=1);"
            "out = contribution([e], window_ns=1000);"
            "assert out[e.key] == 0.0"
        )
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=env, timeout=120
        )


ANOMALY_SCENARIOS = [
    "in-loop-deadlock",
    "out-of-loop-deadlock",
    "pfc-storm",
    "incast-backpressure",
    "lordma-attack",
    "normal-contention",
]


@pytest.mark.parametrize("name", ANOMALY_SCENARIOS)
def test_scalar_and_columnar_diagnoses_byte_identical(name):
    """End to end, per anomaly class: the scalar fallback and the columnar
    production path yield the same diagnosis strings and the same
    canonical obs trace.  (With test_sharded_determinism pinning sharded
    == single-process, this transitively pins sharded == scalar too.)"""
    from repro.experiments import RunConfig, ScenarioSpec, run_scenario
    from repro.obs import ObsConfig, canonical_jsonl

    def run():
        spec = ScenarioSpec(name, seed=1)
        result = run_scenario(
            spec.build(), RunConfig(obs=ObsConfig(trace=True, sink="ring"))
        )
        diagnoses = [
            o.diagnosis.describe() if o.diagnosis is not None else None
            for o in result.outcomes
        ]
        return diagnoses, canonical_jsonl(result.obs.tracer.records())

    with columnar.force_scalar():
        scalar_diag, scalar_trace = run()
    columnar_diag, columnar_trace = run()
    assert columnar_diag == scalar_diag
    assert columnar_trace == scalar_trace
