"""Queue replay and contribution tests (Algorithm 1 lines 21-37)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import contribution, replay_queue
from repro.sim import FlowKey
from repro.telemetry import FlowEntry


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


def entry(i, pkts, paused=0, qdepth_avg=0.0, port=1):
    return FlowEntry(
        key=key(i),
        egress_port=port,
        pkt_count=pkts,
        paused_count=paused,
        qdepth_sum_pkts=int(qdepth_avg * pkts),
        byte_count=pkts * 1000,
    )


class TestReplayQueue:
    def test_uniform_spacing(self):
        seq = replay_queue([entry(1, pkts=4)], window_ns=1000)
        assert [t for t, _ in seq] == [0, 250, 500, 750]

    def test_flows_interleave(self):
        seq = replay_queue([entry(1, pkts=2), entry(2, pkts=4)], window_ns=1000)
        assert len(seq) == 6
        assert [t for t, _ in seq] == sorted(t for t, _ in seq)

    def test_empty_entries_skipped(self):
        assert replay_queue([entry(1, pkts=0)], window_ns=1000) == []

    def test_deterministic(self):
        entries = [entry(2, pkts=5), entry(1, pkts=5)]
        assert replay_queue(entries, 1000) == replay_queue(list(reversed(entries)), 1000)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6))
    def test_total_packets_preserved(self, counts):
        entries = [entry(i, pkts=c) for i, c in enumerate(counts)]
        seq = replay_queue(entries, window_ns=10_000)
        assert len(seq) == sum(counts)


class TestContribution:
    def test_empty(self):
        assert contribution([], window_ns=1000) == {}

    def test_single_flow_nets_to_zero(self):
        out = contribution([entry(1, pkts=10, qdepth_avg=5)], window_ns=1000)
        assert out[key(1)] == pytest.approx(0.0)

    def test_large_flow_blamed_by_small_victim(self):
        # A big flow occupying the queue vs a small flow arriving into it.
        big = entry(1, pkts=90, qdepth_avg=20)
        small = entry(2, pkts=10, qdepth_avg=40)
        out = contribution([big, small], window_ns=1000)
        assert out[key(1)] > 0, "the queue occupant is the contributor"
        assert out[key(2)] < 0, "the deeper-waiting small flow is a victim"

    def test_paused_packets_excluded(self):
        # All of flow 1's packets enqueued during pause: its perceived queue
        # is PFC buildup, not contention -> it must not be blamed by flow 2.
        paused_flow = entry(1, pkts=50, paused=50, qdepth_avg=30)
        witness = entry(2, pkts=5, qdepth_avg=30)
        out = contribution([paused_flow, witness], window_ns=1000)
        out_naive = contribution([paused_flow, witness], window_ns=1000, exclude_paused=False)
        assert abs(out[key(2)]) <= abs(out_naive[key(2)])

    def test_exclude_paused_flag_changes_result(self):
        entries = [entry(1, pkts=50, paused=25, qdepth_avg=30), entry(2, pkts=50, qdepth_avg=30)]
        strict = contribution(entries, window_ns=1000, exclude_paused=True)
        naive = contribution(entries, window_ns=1000, exclude_paused=False)
        assert strict != naive

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=40),  # pkts
                st.integers(min_value=0, max_value=30),  # qdepth avg
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_contributions_sum_to_zero(self, specs):
        """Wait-for weight conservation: incoming and outgoing cancel."""
        entries = [entry(i, pkts=p, qdepth_avg=q) for i, (p, q) in enumerate(specs)]
        out = contribution(entries, window_ns=10_000)
        assert sum(out.values()) == pytest.approx(0.0, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=40), min_size=2, max_size=5),
        st.integers(min_value=0, max_value=30),
    )
    def test_all_flows_present_in_output(self, counts, qd):
        entries = [entry(i, pkts=c, qdepth_avg=qd) for i, c in enumerate(counts)]
        out = contribution(entries, window_ns=10_000)
        assert set(out) == {key(i) for i in range(len(counts))}

    def test_zero_depth_means_no_contention(self):
        entries = [entry(1, pkts=10, qdepth_avg=0), entry(2, pkts=10, qdepth_avg=0)]
        out = contribution(entries, window_ns=1000)
        assert all(v == pytest.approx(0.0) for v in out.values())
