"""Algorithm 1 (provenance construction) unit tests on hand-built reports.

These tests fabricate switch reports directly — no simulation — so every
edge-construction rule of §3.5.1 is exercised in isolation.
"""

import pytest

from repro.core import EdgeKind, build_provenance
from repro.sim import FlowKey
from repro.telemetry import EpochData, FlowEntry, PortEntry, SwitchReport
from repro.topology import PortRef, build_line


def key(i):
    return FlowKey("10.1.0.2", "10.3.0.2", 1000 + i, 4791)


@pytest.fixture
def line3():
    return build_line(num_switches=3, hosts_per_switch=2)


def port_between(topo, a, b):
    for port, remote in topo.neighbors(a):
        if remote.node == b:
            return port
    raise AssertionError(f"no link {a}-{b}")


def report(switch, flows=(), ports=(), meters=(), status=(), t=1000):
    rep = SwitchReport(switch=switch, collect_time=t)
    epoch = EpochData(epoch_number=0)
    for entry in flows:
        epoch.flows[(entry.key, entry.egress_port)] = entry
    for entry in ports:
        epoch.ports[entry.port] = entry
    for (i, e), vol in meters:
        epoch.meters[(i, e)] = vol
    rep.epochs = [epoch]
    rep.port_status = dict(status)
    return rep


def backpressure_reports(topo):
    """Fig 1(a)-shaped telemetry: victim paused at SW1, contention at SW3."""
    p12 = port_between(topo, "SW1", "SW2")
    p21 = port_between(topo, "SW2", "SW1")
    p23 = port_between(topo, "SW2", "SW3")
    p32 = port_between(topo, "SW3", "SW2")
    p3h = port_between(topo, "SW3", "H3_0")

    victim = key(0)
    spreader = key(1)  # paused at both SW1 and SW2
    bursts = [key(2), key(3)]

    rep1 = report(
        "SW1",
        flows=[
            FlowEntry(victim, p12, pkt_count=40, paused_count=12, qdepth_sum_pkts=400, byte_count=40_000),
            FlowEntry(spreader, p12, pkt_count=30, paused_count=9, qdepth_sum_pkts=300, byte_count=30_000),
        ],
        ports=[PortEntry(p12, pkt_count=70, paused_count=21, qdepth_sum_pkts=700)],
    )
    rep2 = report(
        "SW2",
        flows=[
            FlowEntry(spreader, p23, pkt_count=30, paused_count=10, qdepth_sum_pkts=600, byte_count=30_000),
        ],
        ports=[PortEntry(p23, pkt_count=30, paused_count=10, qdepth_sum_pkts=600)],
        meters=[((p21, p23), 30_000)],
    )
    rep3 = report(
        "SW3",
        flows=[
            FlowEntry(bursts[0], p3h, pkt_count=100, paused_count=0, qdepth_sum_pkts=5000, byte_count=100_000),
            FlowEntry(bursts[1], p3h, pkt_count=100, paused_count=0, qdepth_sum_pkts=5000, byte_count=100_000),
            FlowEntry(spreader, p3h, pkt_count=10, paused_count=0, qdepth_sum_pkts=900, byte_count=10_000),
        ],
        ports=[PortEntry(p3h, pkt_count=210, paused_count=0, qdepth_sum_pkts=10_900)],
        meters=[((p32, p3h), 140_000)],
    )
    refs = {
        "p12": PortRef("SW1", p12),
        "p23": PortRef("SW2", p23),
        "p3h": PortRef("SW3", p3h),
    }
    return {"SW1": rep1, "SW2": rep2, "SW3": rep3}, victim, spreader, bursts, refs


class TestPortLevelEdges:
    def test_pfc_chain_built(self, line3):
        reports, victim, _, _, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        g = ann.graph
        assert g.weight(refs["p12"], refs["p23"]) is not None
        assert g.weight(refs["p23"], refs["p3h"]) is not None

    def test_weight_formula(self, line3):
        reports, victim, _, _, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        # w = paused_num[p12] * meter_share * qdepth[p23]
        #   = 21 * (30000/30000) * (600/30)
        assert ann.graph.weight(refs["p12"], refs["p23"]) == pytest.approx(21 * 20.0)

    def test_unpaused_port_emits_no_port_edges(self, line3):
        reports, victim, _, _, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        assert ann.graph.port_out_degree(refs["p3h"]) == 0

    def test_status_paused_port_keeps_chain_alive(self, line3):
        """A paused-but-empty port (zero paused packets) still gets its
        port-level edge via the Figure-3 status register."""
        reports, victim, _, _, refs = backpressure_reports(line3)
        p12 = refs["p12"].port
        rep1 = reports["SW1"]
        rep1.epochs[0].ports[p12].paused_count = 0
        for entry in rep1.epochs[0].flows.values():
            entry.paused_count = 0
        rep1.port_status = {p12: 100_000}  # still paused at collection
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        assert ann.graph.weight(refs["p12"], refs["p23"]) is not None
        assert ann.port_meta[refs["p12"]].is_pfc_paused
        assert ann.port_meta[refs["p12"]].effective_paused_num == 1

    def test_missing_downstream_report_truncates_chain(self, line3):
        reports, victim, _, _, refs = backpressure_reports(line3)
        del reports["SW3"]
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        assert ann.graph.port_out_degree(refs["p23"]) == 0

    def test_zero_meter_means_no_edge(self, line3):
        reports, victim, _, _, refs = backpressure_reports(line3)
        reports["SW2"].epochs[0].meters.clear()
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        assert ann.graph.weight(refs["p12"], refs["p23"]) is None


class TestFlowPortEdges:
    def test_paused_flows_get_edges(self, line3):
        reports, victim, spreader, _, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        g = ann.graph
        assert g.flow_port_weight(victim, refs["p12"]) == 12.0
        assert g.flow_port_weight(spreader, refs["p12"]) == 9.0
        assert g.flow_port_weight(spreader, refs["p23"]) == 10.0

    def test_unpaused_flow_gets_no_edge(self, line3):
        reports, victim, _, bursts, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        assert ann.graph.out_edges(bursts[0], EdgeKind.FLOW_PORT) == []

    def test_spreading_flow_paused_at_two_hops(self, line3):
        reports, victim, spreader, _, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        pausing = dict(ann.graph.ports_pausing_flow(spreader))
        assert set(pausing) == {refs["p12"], refs["p23"]}


class TestPortFlowEdges:
    def test_burst_flows_positive_at_congested_port(self, line3):
        reports, victim, spreader, bursts, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        weights = ann.graph.port_flow_weights(refs["p3h"])
        assert weights[bursts[0]] > 0
        assert weights[bursts[1]] > 0
        assert weights[spreader] < 0  # few packets, deep queue: a victim


class TestMetadata:
    def test_port_meta_populated(self, line3):
        reports, victim, _, _, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        meta = ann.port_meta[refs["p3h"]]
        assert meta.peer_is_host
        assert meta.pkt_num == 210
        assert meta.avg_qdepth_pkts == pytest.approx(10_900 / 210)

    def test_flow_port_meta_populated(self, line3):
        reports, victim, _, bursts, refs = backpressure_reports(line3)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=victim)
        meta = ann.flow_port_meta[(bursts[0], refs["p3h"])]
        assert meta.pkt_count == 100
        assert meta.byte_count == 100_000

    def test_victim_added_even_without_telemetry(self, line3):
        reports, *_ = backpressure_reports(line3)
        ghost = key(99)
        ann = build_provenance(reports, line3, window_ns=1 << 20, victim=ghost)
        assert ghost in ann.graph.flows
