"""Monitoring is a pure observer: diagnoses are byte-identical with the
monitor on or off, and the monitor's own outputs are a pure function of
the scenario seed."""

import pytest

from repro.experiments import RunConfig, run_scenario
from repro.monitor import MonitorConfig, jsonl_snapshot, prometheus_text
from repro.workloads import SCENARIO_BUILDERS

SCENARIOS = sorted(SCENARIO_BUILDERS)


def diagnoses_text(result):
    return "\n".join(
        o.diagnosis.describe()
        for o in result.outcomes
        if o.diagnosis is not None
    )


class TestPureObserver:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_monitor_never_changes_the_diagnosis(self, name):
        off = run_scenario(SCENARIO_BUILDERS[name](seed=1), RunConfig())
        on = run_scenario(
            SCENARIO_BUILDERS[name](seed=1),
            RunConfig(monitor=MonitorConfig()),
        )
        assert diagnoses_text(on) == diagnoses_text(off)
        assert [str(o.victim) for o in on.outcomes] == [
            str(o.victim) for o in off.outcomes
        ]

    def test_monitor_does_not_perturb_trace_output(self, tmp_path):
        """Even the pipeline-plane trace stays byte-identical: the sampler
        reads sim state but never reorders or injects pipeline events."""
        from repro.obs import ObsConfig

        def run_traced(path, monitor):
            scenario = SCENARIO_BUILDERS["pfc-storm"](seed=1)
            run_scenario(
                scenario,
                RunConfig(
                    obs=ObsConfig(trace=True, sink="jsonl", jsonl_path=str(path)),
                    monitor=monitor,
                ),
            )
            return path.read_bytes()

        without = run_traced(tmp_path / "off.jsonl", None)
        with_monitor = run_traced(tmp_path / "on.jsonl", MonitorConfig())
        assert with_monitor == without


class TestSeededReproducibility:
    def test_same_seed_same_monitor_output(self):
        def snapshot(seed):
            result = run_scenario(
                SCENARIO_BUILDERS["pfc-storm"](seed=seed),
                RunConfig(monitor=MonitorConfig()),
            )
            monitor = result.monitor
            return (
                prometheus_text(monitor),
                "\n".join(jsonl_snapshot(monitor)),
                monitor.timeline.describe(),
            )

        assert snapshot(1) == snapshot(1)

    def test_different_seed_different_fabric(self):
        a = run_scenario(
            SCENARIO_BUILDERS["incast-backpressure"](seed=1),
            RunConfig(monitor=MonitorConfig()),
        )
        b = run_scenario(
            SCENARIO_BUILDERS["incast-backpressure"](seed=2),
            RunConfig(monitor=MonitorConfig()),
        )
        # Seeds shift flow placement; the sketched flow keys must differ.
        assert prometheus_text(a.monitor) != prometheus_text(b.monitor)
