"""Alert rules: sustain/collapse shapes and the per-episode latch."""

from repro.monitor import (
    Alert,
    CollapseRule,
    RingSeries,
    RuleEngine,
    SustainedRule,
)


def make_series(values, metric="m", subject="s", step=100):
    series = RingSeries(metric, subject, step_ns=step)
    for v in values:
        series.append(float(v))
    return series


class TestSustainedRule:
    rule = SustainedRule(name="r", category="c", metric="m", threshold=5.0, sustain=3)

    def test_fires_after_sustain_samples(self):
        assert self.rule.check(make_series([6, 6])) is None  # too short
        assert self.rule.check(make_series([6, 6, 6])) == (6.0, 5.0)

    def test_dip_breaks_the_streak(self):
        assert self.rule.check(make_series([6, 4, 6])) is None

    def test_only_last_sustain_samples_matter(self):
        assert self.rule.check(make_series([0, 0, 7, 8, 9])) == (9.0, 5.0)


class TestCollapseRule:
    rule = CollapseRule(
        name="r", category="c", metric="m", window=3, fraction=0.5, min_level=10.0
    )

    def test_needs_two_windows(self):
        assert self.rule.check(make_series([100, 100, 100, 0, 0])) is None

    def test_fires_on_collapse(self):
        hit = self.rule.check(make_series([100, 100, 100, 0, 0, 0]))
        assert hit == (0.0, 50.0)

    def test_quiet_prior_never_fires(self):
        # Prior mean below min_level: a port that was never moving bytes
        # cannot "collapse".
        assert self.rule.check(make_series([1, 1, 1, 0, 0, 0])) is None

    def test_partial_drop_above_fraction_is_fine(self):
        assert self.rule.check(make_series([100, 100, 100, 60, 60, 60])) is None


class TestRuleEngine:
    def test_episode_latch_raises_once(self):
        engine = RuleEngine(
            [SustainedRule(name="r", category="c", metric="m", threshold=1.0, sustain=2)]
        )
        series = RingSeries("m", "s", step_ns=100)
        raised = []
        for t, v in enumerate([1, 1, 1, 1, 0, 1, 1], start=1):
            series.append(float(v))
            raised += engine.step(series, t * 100)
        # One alert for the first episode, one after the dip re-armed it.
        assert len(raised) == 2
        assert [a.time_ns for a in raised] == [200, 700]
        assert engine.alerts == raised

    def test_latch_is_per_subject(self):
        engine = RuleEngine(
            [SustainedRule(name="r", category="c", metric="m", threshold=1.0, sustain=1)]
        )
        s1 = make_series([1], subject="p1")
        s2 = make_series([1], subject="p2")
        assert len(engine.step(s1, 100)) == 1
        assert len(engine.step(s2, 100)) == 1

    def test_unwatched_metric_is_free(self):
        engine = RuleEngine(
            [SustainedRule(name="r", category="c", metric="m", threshold=1.0)]
        )
        other = make_series([9, 9, 9], metric="unrelated")
        assert engine.step(other, 100) == []

    def test_alerts_by_category(self):
        engine = RuleEngine(
            [
                SustainedRule(name="a", category="x", metric="m", threshold=1.0, sustain=1),
                SustainedRule(name="b", category="y", metric="m", threshold=1.0, sustain=1),
            ]
        )
        engine.step(make_series([2]), 100)
        assert engine.alerts_by_category() == {"x": 1, "y": 1}

    def test_alert_serialization(self):
        alert = Alert(
            rule="r", category="c", subject="E0.P1",
            time_ns=1000, value=2.0, threshold=1.0,
        )
        d = alert.to_dict()
        assert d["subject"] == "E0.P1"
        assert "E0.P1" in alert.describe()
