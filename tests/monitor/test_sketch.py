"""Count-min sketch guarantees and heavy-hitter tracking.

The headline property test drives a 1k-flow workload through a sketch
sized from (epsilon, delta) and checks both CMS guarantees: estimates
never underestimate (deterministic), and the epsilon*N overestimate bound
holds for all but ~delta of the keys (the bound is probabilistic per key,
so the test allows the expected number of violations, not zero).
"""

import random

import pytest

from repro.monitor import CountMinSketch, HeavyHitters


class TestGeometry:
    def test_from_error_bound_sizing(self):
        cms = CountMinSketch.from_error_bound(0.002, 0.02)
        # width = ceil(e/eps) = 1360, depth = ceil(ln(1/delta)) = 4.
        assert cms.width == 1360
        assert cms.depth == 4
        assert cms.epsilon <= 0.002
        assert cms.delta <= 0.02
        assert cms.memory_bytes == 8 * 1360 * 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bound(0.0, 0.5)
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bound(0.01, 1.5)


class TestUpdates:
    def test_estimate_exact_when_sparse(self):
        cms = CountMinSketch(width=4096, depth=4)
        cms.add("a", 10)
        cms.add("b", 5)
        assert cms.estimate("a") == 10
        assert cms.estimate("b") == 5
        assert cms.total == 15

    def test_add_returns_new_estimate(self):
        cms = CountMinSketch(width=1024, depth=4)
        assert cms.add("k", 3) == 3
        assert cms.add("k", 4) == 7

    def test_nonpositive_count_is_a_read(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.add("k", 9)
        assert cms.add("k", 0) == 9
        assert cms.total == 9

    def test_never_underestimates_small(self):
        cms = CountMinSketch(width=8, depth=2)  # tiny: force collisions
        truth = {}
        rng = random.Random(7)
        for _ in range(500):
            key = f"k{rng.randrange(50)}"
            count = rng.randrange(1, 20)
            cms.add(key, count)
            truth[key] = truth.get(key, 0) + count
        for key, true_count in truth.items():
            assert cms.estimate(key) >= true_count

    def test_deterministic_across_instances(self):
        """Seeded CRC32 hashing: same stream, same sketch contents."""
        a = CountMinSketch(width=256, depth=3, seed=42)
        b = CountMinSketch(width=256, depth=3, seed=42)
        for i in range(100):
            a.add(f"flow-{i % 17}", i + 1)
            b.add(f"flow-{i % 17}", i + 1)
        for i in range(17):
            key = f"flow-{i}"
            assert a.indices(key) == b.indices(key)
            assert a.estimate(key) == b.estimate(key)


class TestErrorBoundProperty:
    def test_epsilon_n_bound_under_1k_flows(self):
        """estimate <= true + eps*N for (almost) all of 1000 flow keys.

        Per-key violation probability is delta, so over 1000 keys a naive
        all-keys assertion would be flaky-by-design; the test budgets
        2*delta*keys violations (generous but still catches a broken
        conservative update or hashing by orders of magnitude).
        """
        epsilon, delta = 0.002, 0.02
        cms = CountMinSketch.from_error_bound(epsilon, delta, seed=3)
        rng = random.Random(11)
        keys = [
            f"10.0.{i // 256}.{i % 256}:{10000 + i}->10.1.0.1:4791/17"
            for i in range(1000)
        ]
        truth = dict.fromkeys(keys, 0)
        # Zipf-ish mix: a few heavy flows, a long light tail.
        for _ in range(20_000):
            key = keys[min(rng.randrange(1000), rng.randrange(1000))]
            count = rng.randrange(1, 1500)
            cms.add(key, count)
            truth[key] += count

        bound = cms.error_bound()
        assert bound == -(-cms.epsilon * cms.total // 1)  # ceil(eps*N)
        violations = 0
        for key in keys:
            estimate = cms.estimate(key)
            assert estimate >= truth[key], "CMS must never underestimate"
            if estimate > truth[key] + bound:
                violations += 1
        assert violations <= max(1, int(2 * delta * len(keys)))

    def test_counters_shape(self):
        cms = CountMinSketch(width=16, depth=2)
        cms.add("x", 4)
        counters = cms.counters()
        assert counters["updates"] == 1
        assert counters["total"] == 4
        assert counters["width"] == 16
        assert counters["memory_bytes"] == 8 * 16 * 2


class TestHeavyHitters:
    def test_keeps_top_k(self):
        hh = HeavyHitters(k=3)
        for key, est in [("a", 5), ("b", 10), ("c", 1), ("d", 7), ("e", 2)]:
            hh.offer(key, est)
        assert [k for k, _ in hh.top()] == ["b", "d", "a"]

    def test_update_in_place(self):
        hh = HeavyHitters(k=2)
        hh.offer("a", 5)
        hh.offer("a", 9)
        hh.offer("a", 4)  # stale lower estimate never regresses
        assert hh.top() == [("a", 9)]

    def test_ties_keep_resident(self):
        hh = HeavyHitters(k=1)
        hh.offer("a", 5)
        hh.offer("b", 5)
        assert hh.top() == [("a", 5)]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HeavyHitters(k=0)
