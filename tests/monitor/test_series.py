"""RingSeries: fixed-step semantics, wrap-around, lazy backfill."""

import pytest

from repro.monitor import RingSeries


class TestBasics:
    def test_empty_series(self):
        s = RingSeries("m", "s", step_ns=100)
        assert len(s) == 0
        assert s.latest() == 0.0
        assert s.window(4) == []
        assert s.window_sum(4) == 0.0
        assert s.window_mean(4) == 0.0
        assert s.window_max(4) == 0.0
        assert list(s.iter_points()) == []

    def test_append_and_latest(self):
        s = RingSeries("m", "s", step_ns=100)
        for v in (1.0, 2.0, 3.0):
            s.append(v)
        assert len(s) == 3
        assert s.latest() == 3.0
        assert s.window(2) == [2.0, 3.0]
        assert s.last_time_ns == 300

    def test_sample_k_taken_at_k_plus_1_steps(self):
        s = RingSeries("m", "s", step_ns=100)
        s.append(7.0)
        s.append(8.0)
        assert list(s.iter_points()) == [(100, 7.0), (200, 8.0)]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RingSeries("m", "s", step_ns=0)
        with pytest.raises(ValueError):
            RingSeries("m", "s", step_ns=100, capacity=0)


class TestWrapAround:
    def test_ring_overwrites_oldest(self):
        s = RingSeries("m", "s", step_ns=10, capacity=4)
        for v in range(10):
            s.append(float(v))
        assert len(s) == 4
        assert s.window(10) == [6.0, 7.0, 8.0, 9.0]
        assert s.latest() == 9.0

    def test_iter_points_after_wrap(self):
        s = RingSeries("m", "s", step_ns=10, capacity=3)
        for v in range(5):
            s.append(float(v))
        # Samples 2,3,4 retained; sample k is at (k+1)*step.
        assert list(s.iter_points()) == [(30, 2.0), (40, 3.0), (50, 4.0)]


class TestWindows:
    def test_window_sum_with_offset(self):
        s = RingSeries("m", "s", step_ns=10, capacity=16)
        for v in (1, 2, 3, 4, 5, 6, 7, 8):
            s.append(float(v))
        assert s.window_sum(4) == 5 + 6 + 7 + 8
        assert s.window_sum(4, offset=4) == 1 + 2 + 3 + 4
        assert s.window_mean(4) == 6.5
        assert s.window_mean(4, offset=4) == 2.5

    def test_window_truncated_by_retention(self):
        s = RingSeries("m", "s", step_ns=10, capacity=4)
        for v in (1, 2, 3, 4, 5, 6):
            s.append(float(v))
        # Only 3,4,5,6 retained: an offset window reaching past retention
        # truncates instead of inventing values.
        assert s.window_sum(4, offset=2) == 3 + 4
        assert s.window_mean(4, offset=2) == 3.5

    def test_window_max(self):
        s = RingSeries("m", "s", step_ns=10)
        for v in (3.0, 9.0, 1.0):
            s.append(v)
        assert s.window_max(2) == 9.0
        assert s.window_max(1) == 1.0


class TestLazyBackfill:
    def test_start_count_reads_as_zero_prefix(self):
        """A series created at global tick K acts as if it recorded K zeros."""
        s = RingSeries("m", "s", step_ns=100, capacity=8, start_count=5)
        s.append(4.0)
        assert len(s) == 6
        assert s.window(3) == [0.0, 0.0, 4.0]
        assert s.window_sum(6) == 4.0
        # Timeline alignment: the appended sample is global sample #5.
        assert list(s.iter_points())[-1] == (600, 4.0)

    def test_backfill_beyond_capacity(self):
        s = RingSeries("m", "s", step_ns=100, capacity=4, start_count=100)
        s.append(1.0)
        assert len(s) == 4
        assert s.window(4) == [0.0, 0.0, 0.0, 1.0]
        assert s.last_time_ns == 101 * 100
