"""Renderers on degenerate inputs: empty fabrics, zero alerts, one sample.

The dashboard/HTML paths are usually exercised on fully-populated
monitors; these tests pin the edges — a monitor that never sampled, ring
series with zero or one point, an incident-free timeline — where
min()/max()/div-by-span code loves to blow up.
"""

import pytest

from repro.monitor import FabricMonitor, MonitorConfig
from repro.monitor.export import (
    jsonl_snapshot,
    prometheus_text,
    render_dashboard,
    render_html,
    sparkline,
)
from repro.sim import Network
from repro.topology import build_dumbbell
from repro.units import msec


@pytest.fixture
def unsampled_monitor():
    """A monitor attached to a fabric that never ran: zero samples,
    zero series, zero alerts."""
    network = Network(build_dumbbell(hosts_per_side=2))
    return FabricMonitor(network, MonitorConfig())


@pytest.fixture
def single_sample_monitor():
    """Exactly one sampling tick: every ring series holds one point."""
    network = Network(build_dumbbell(hosts_per_side=2))
    monitor = FabricMonitor(
        network, MonitorConfig(interval_ns=int(msec(10)))
    ).start()
    network.sim.run(until_ns=int(msec(10)))
    return monitor


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_single_sample(self):
        out = sparkline([5.0])
        assert len(out) == 1

    def test_constant_series_is_flat(self):
        out = sparkline([3.0, 3.0, 3.0])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_width_truncates_from_the_left(self):
        out = sparkline([0.0] * 100 + [1.0], width=4)
        assert len(out) == 4


class TestUnsampledMonitor:
    def test_dashboard_renders(self, unsampled_monitor):
        out = render_dashboard(unsampled_monitor)
        assert "fabric monitor dashboard" in out
        assert "x 0 samples" in out

    def test_html_renders(self, unsampled_monitor):
        out = render_html(unsampled_monitor, title="degenerate")
        assert out.lstrip().startswith("<!DOCTYPE html>")
        assert "degenerate" in out

    def test_prometheus_renders(self, unsampled_monitor):
        out = prometheus_text(unsampled_monitor)
        # No series families, but the scalar families must still appear,
        # fully announced (header-only families are legal exposition).
        assert "# TYPE repro_monitor_samples_total counter" in out
        assert "repro_monitor_samples_total 0" in out
        assert "# TYPE repro_monitor_alerts_total counter" in out

    def test_jsonl_renders(self, unsampled_monitor):
        lines = list(jsonl_snapshot(unsampled_monitor))
        assert lines  # at least the meta record

    def test_zero_alerts_timeline(self, unsampled_monitor):
        out = render_dashboard(unsampled_monitor)
        # The timeline section renders without a single alert/incident.
        assert unsampled_monitor.alerts == []
        assert unsampled_monitor.timeline.incidents == []


class TestSingleSampleMonitor:
    def test_dashboard_renders_one_point_series(self, single_sample_monitor):
        assert single_sample_monitor.samples >= 1
        out = render_dashboard(single_sample_monitor)
        assert "fabric monitor dashboard" in out

    def test_html_renders(self, single_sample_monitor):
        out = render_html(single_sample_monitor)
        assert "</html>" in out

    def test_prometheus_parseable(self, single_sample_monitor):
        out = prometheus_text(single_sample_monitor)
        for line in out.splitlines():
            if line and not line.startswith("#"):
                # name[{labels}] value — two space-separated fields.
                assert len(line.rsplit(" ", 1)) == 2


class TestMaxSubjectsClamp:
    def test_tiny_max_subjects(self, single_sample_monitor):
        out = render_dashboard(single_sample_monitor, max_subjects=1)
        assert "more subject(s)" in out or "fabric monitor" in out

    def test_tiny_width(self, single_sample_monitor):
        out = render_dashboard(single_sample_monitor, width=1)
        assert "fabric monitor dashboard" in out
