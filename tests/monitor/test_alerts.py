"""Pinned end-to-end behaviour: every anomaly class raises a
correct-category alert before its diagnosis completes, and the incident
timeline links those alerts to the final Diagnosis.

These pins are the acceptance contract of the continuous-monitoring
layer: if a rule threshold or sampling change makes any of the five
anomaly classes fly under the monitor's radar, this file fails.
"""

import pytest

from repro.experiments import RunConfig, run_scenario
from repro.faults.chaos import CHAOS_SCENARIOS
from repro.monitor import ANOMALY_ALERT_CATEGORIES, MonitorConfig
from repro.workloads import SCENARIO_BUILDERS

# scenario builder -> the anomaly class its seed-1 run is diagnosed as.
EXPECTED_ANOMALY = {
    "pfc-storm": "pfc-storm",
    "incast-backpressure": "pfc-backpressure-flow-contention",
    "in-loop-deadlock": "in-loop-deadlock",
    "out-of-loop-deadlock": "out-of-loop-deadlock-injection",
    "normal-contention": "normal-flow-contention",
}


def run_monitored(name, seed=1, **knobs):
    scenario = SCENARIO_BUILDERS[name](seed=seed)
    return run_scenario(
        scenario, RunConfig(monitor=MonitorConfig(**knobs))
    )


class TestEveryAnomalyClassAlertsEarly:
    @pytest.mark.parametrize("name", CHAOS_SCENARIOS)
    def test_correct_category_alert_precedes_diagnosis(self, name):
        result = run_monitored(name)
        monitor = result.monitor
        incidents = monitor.timeline.incidents
        assert incidents, f"{name}: no diagnosis reached the timeline"
        for incident in incidents:
            assert incident.anomaly == EXPECTED_ANOMALY[name]
            expected = ANOMALY_ALERT_CATEGORIES[incident.anomaly]
            early = [a for a in incident.alerts if a.category in expected]
            assert early, (
                f"{name}: no {sorted(expected)} alert before the verdict "
                f"(got categories {sorted(incident.categories)})"
            )
            # "Before the diagnosis completes": every timeline alert
            # precedes the verdict timestamp by construction — assert it
            # anyway so a refactor cannot silently weaken the window.
            assert all(a.time_ns <= incident.verdict_ns for a in incident.alerts)
            assert incident.early_warning
            assert incident.lead_time_ns() > 0

    @pytest.mark.parametrize("name", CHAOS_SCENARIOS)
    def test_timeline_links_alerts_to_diagnosed_provenance(self, name):
        """At least one alerting subject lies on the diagnosed PFC path,
        deadlock loop, or initial congestion port of the final Diagnosis."""
        result = run_monitored(name)
        for incident in result.monitor.timeline.incidents:
            assert incident.linked_subjects, (
                f"{name}: no alert subject on the diagnosed provenance"
            )
            alert_subjects = {a.subject for a in incident.alerts}
            assert set(incident.linked_subjects) <= alert_subjects

    def test_storm_scenario_raises_the_storm_category(self):
        """The PFC-storm signature specifically: pause frames granted on a
        host-facing port long enough to saturate the sampling window."""
        result = run_monitored("pfc-storm")
        categories = result.monitor.engine.alerts_by_category()
        assert categories.get("pfc_storm", 0) >= 1


class TestTimelineIntegration:
    def test_incident_carries_culprits_and_victim(self):
        result = run_monitored("incast-backpressure")
        incident = result.monitor.timeline.incidents[0]
        diagnosis = result.diagnosis()
        assert incident.victim == str(diagnosis.victim)
        assert incident.culprits == [
            str(k) for k in diagnosis.primary().culprit_keys()
        ]
        assert incident.confidence == diagnosis.confidence

    def test_span_id_linked_when_tracing_on(self):
        from repro.obs import ObsConfig

        scenario = SCENARIO_BUILDERS["pfc-storm"](seed=1)
        result = run_scenario(
            scenario,
            RunConfig(
                monitor=MonitorConfig(), obs=ObsConfig(trace=True, sink="ring")
            ),
        )
        incidents = result.monitor.timeline.incidents
        assert incidents
        span_ids = {r.get("id") for r in result.obs.tracer.records()}
        for incident in incidents:
            assert incident.span_id is not None
            assert incident.span_id in span_ids

    def test_span_id_absent_without_tracing(self):
        result = run_monitored("pfc-storm")
        assert all(
            i.span_id is None for i in result.monitor.timeline.incidents
        )

    def test_incident_to_dict_round_trips_json(self):
        import json

        result = run_monitored("pfc-storm")
        payload = result.monitor.timeline.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["incidents"][0]["early_warning"] is True


class TestRunnerSurfaces:
    def test_monitor_off_by_default(self):
        scenario = SCENARIO_BUILDERS["normal-contention"](seed=1)
        result = run_scenario(scenario, RunConfig())
        assert result.monitor is None

    def test_disabled_config_means_no_monitor(self):
        scenario = SCENARIO_BUILDERS["normal-contention"](seed=1)
        result = run_scenario(
            scenario, RunConfig(monitor=MonitorConfig(enabled=False))
        )
        assert result.monitor is None

    def test_metrics_absorb_monitor_counters(self):
        result = run_monitored("pfc-storm")
        metrics = result.metrics.to_dict()
        assert metrics["counters"]["monitor.samples"] == result.monitor.samples
        assert metrics["counters"]["monitor.alerts_total"] == len(
            result.monitor.alerts
        )
        assert metrics["counters"]["monitor.sketch.updates"] > 0
        # The agent fed the monitor RTT samples through its histogram.
        assert metrics["histograms"]["monitor.rtt_ns"]["count"] > 0
        assert metrics["histograms"]["monitor.rtt_ns"]["p95"] is not None

    def test_summary_carries_alert_reduction(self):
        from repro.experiments.runner import (
            ScenarioSpec,
            run_scenarios_parallel,
        )

        specs = [ScenarioSpec(builder="pfc-storm", seed=1)]
        config = RunConfig(monitor=MonitorConfig())
        (summary,) = run_scenarios_parallel(specs, config)
        assert summary.alerts > 0
        assert summary.incidents > 0
        assert summary.early_warnings == summary.incidents
        assert "pause_backpressure" in summary.alert_categories

    def test_monitor_config_crosses_process_pool(self):
        """jobs=2 workers rebuild monitors from the frozen config and
        reduce to summaries identical to in-process execution."""
        from repro.experiments.runner import (
            ScenarioSpec,
            run_scenarios_parallel,
        )

        specs = [
            ScenarioSpec(builder="pfc-storm", seed=1),
            ScenarioSpec(builder="normal-contention", seed=1),
        ]
        config = RunConfig(monitor=MonitorConfig())
        serial = run_scenarios_parallel(specs, config, jobs=1)
        parallel = run_scenarios_parallel(specs, config, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.alert_categories == b.alert_categories
            assert a.alerts == b.alerts
            assert a.incidents == b.incidents
            assert a.diagnosis_text == b.diagnosis_text
