"""Determinism regression tests: repeated and parallel runs are identical.

The whole diagnosis pipeline must be a pure function of (scenario builder,
seed): the simulator breaks timestamp ties in schedule order, FlowKey
hashes with a process-independent CRC32, and the parallel runner rebuilds
each scenario from its spec inside the worker.  These tests pin that down
so a future "optimization" cannot quietly introduce run-to-run jitter.
"""

from repro.experiments import (
    RunConfig,
    ScenarioSpec,
    run_scenario,
    run_scenarios_parallel,
)
from repro.workloads import SCENARIO_BUILDERS

SCENARIO = "incast-backpressure"


def _run_once(seed=1):
    scenario = SCENARIO_BUILDERS[SCENARIO](seed=seed)
    result = run_scenario(scenario, RunConfig())
    diagnosis = result.diagnosis()
    return {
        "describe": diagnosis.describe() if diagnosis else None,
        "events_run": result.events_run,
        "collected": result.collected_switches,
        "processing": result.processing_bytes,
        "bandwidth": result.bandwidth_bytes,
        "coverage": result.causal_coverage,
    }


class TestSerialDeterminism:
    def test_same_seed_twice_is_identical(self):
        assert _run_once(seed=1) == _run_once(seed=1)

    def test_different_seeds_still_diagnose(self):
        a = _run_once(seed=1)
        b = _run_once(seed=2)
        assert a["describe"] is not None and b["describe"] is not None
        assert a["coverage"] == b["coverage"] == 1.0


class TestParallelDeterminism:
    def test_parallel_runner_matches_serial(self):
        specs = [ScenarioSpec(SCENARIO, seed=s) for s in (1, 2)]
        serial = run_scenarios_parallel(specs, jobs=1)
        parallel = run_scenarios_parallel(specs, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.spec == b.spec
            assert a.diagnosis_text == b.diagnosis_text
            assert a.events_run == b.events_run
            assert a.correct == b.correct
            assert a.causal_coverage == b.causal_coverage
            assert a.processing_bytes == b.processing_bytes
            assert a.bandwidth_bytes == b.bandwidth_bytes

    def test_parallel_matches_direct_run_scenario(self):
        spec = ScenarioSpec(SCENARIO, seed=1)
        (summary,) = run_scenarios_parallel([spec], jobs=2)
        direct = _run_once(seed=1)
        assert summary.diagnosis_text == direct["describe"]
        assert summary.events_run == direct["events_run"]

    def test_results_come_back_in_spec_order(self):
        specs = [ScenarioSpec(SCENARIO, seed=s) for s in (3, 1, 2)]
        summaries = run_scenarios_parallel(specs, jobs=2)
        assert [s.spec.seed for s in summaries] == [3, 1, 2]
