"""Advanced harness scenarios: concurrent anomalies, partial deployment,
probe-driven periodic diagnosis, load robustness."""

import pytest

from repro.collection import (
    AgentConfig,
    DetectionAgent,
    PollingConfig,
    PollingEngine,
    ProbeMesh,
    ProbeMeshConfig,
    TelemetryCollector,
)
from repro.core import AnomalyType, Diagnoser, build_provenance
from repro.experiments import (
    RunConfig,
    diagnosis_correct,
    run_scenario,
    select_reports,
)
from repro.sim import Network
from repro.telemetry import EpochScheme, HawkeyeDeployment, TelemetryConfig
from repro.topology import build_fat_tree
from repro.units import KB, msec, usec
from repro.workloads import incast_backpressure_scenario


class TestConcurrentAnomalies:
    def test_two_disjoint_anomalies_diagnosed_independently(self):
        """§3.4: NPAs without path overlap are collected and diagnosed
        independently.  Two simultaneous incasts in different pods."""
        from repro.sim import SimConfig
        from repro.sim.config import PfcConfig

        topo = build_fat_tree(k=4)
        config = SimConfig(pfc=PfcConfig(xoff_bytes=80 * KB, xon_bytes=40 * KB))
        net = Network(topo, config=config)
        scheme = EpochScheme()
        deployment = HawkeyeDeployment(net, TelemetryConfig(scheme=scheme))
        collector = TelemetryCollector(deployment)
        engine = PollingEngine(net, deployment)
        engine.add_mirror_listener(collector.on_polling_mirror)
        # 200% threshold: three-source incasts degrade the victims ~2.7x.
        agent = DetectionAgent(net, AgentConfig(threshold_multiplier=2.0))

        # Anomaly A: incast into pod 0 (sources pod 1); two flows per source
        # so the burst covers both aggregation switches of the victim pod.
        for i, src in enumerate(["H1_0_0", "H1_0_1", "H1_1_0"]):
            for j in range(2):
                net.start_flow(net.make_flow(
                    src, "H0_0_0", 600 * KB, usec(20), src_port=11000 + 2 * i + j))
        victim_a = net.make_flow("H0_1_0", "H0_0_1", 2_000 * KB, usec(10), src_port=12000)
        net.start_flow(victim_a)
        # Anomaly B: incast into pod 3 (sources pod 2).
        for i, src in enumerate(["H2_0_0", "H2_0_1", "H2_1_0"]):
            for j in range(2):
                net.start_flow(net.make_flow(
                    src, "H3_0_0", 600 * KB, usec(20), src_port=13000 + 2 * i + j))
        victim_b = net.make_flow("H3_1_0", "H3_0_1", 2_000 * KB, usec(10), src_port=14000)
        net.start_flow(victim_b)

        net.run(msec(4))
        collector.flush_pending(net.sim.now)

        diagnoser = Diagnoser()
        for victim in (victim_a, victim_b):
            trigger = next(t for t in agent.triggers if t.victim == victim.key)
            raw = select_reports(collector.reports, trigger.time_ns)
            traced = engine.switches_traced_for(victim.key)
            reports = {n: r for n, r in raw.items() if n in traced}
            annotated = build_provenance(
                reports, topo, window_ns=scheme.window_ns,
                victim=victim.key, epoch_size_ns=scheme.epoch_size_ns,
            )
            diagnosis = diagnoser.diagnose(annotated, victim.key)
            primary = diagnosis.primary()
            assert primary.anomaly is AnomalyType.MICRO_BURST_INCAST
        # The two traces touch disjoint pods.
        pods_a = {n[1] for n in engine.switches_traced_for(victim_a.key) if n[0] in "AE"}
        pods_b = {n[1] for n in engine.switches_traced_for(victim_b.key) if n[0] in "AE"}
        assert pods_a == {"0"} and pods_b == {"3"}


class TestPartialDeployment:
    def test_tor_only_flow_telemetry_still_covers_edge_root_causes(self):
        """§5: with Hawkeye everywhere the PFC trace completes; diagnosis of
        a ToR-rooted anomaly works even at reduced flow-table sizing on
        non-ToR switches (here: full stack everywhere, smaller tables)."""
        scenario = incast_backpressure_scenario(seed=1)
        result = run_scenario(scenario, RunConfig(flow_slots=64))
        d = result.diagnosis()
        assert d is not None and diagnosis_correct(d, scenario.truth)

    def test_missing_hawkeye_switch_breaks_trace(self):
        """A non-Hawkeye switch interrupts the polling trace (§5)."""
        scenario = incast_backpressure_scenario(seed=1)
        net = scenario.network
        deployment = HawkeyeDeployment(
            net, switches=[s for s in net.switches if not s.startswith("A")]
        )
        collector = TelemetryCollector(deployment)
        engine = PollingEngine(net, deployment)
        engine.add_mirror_listener(collector.on_polling_mirror)
        DetectionAgent(net, AgentConfig())
        net.run(scenario.duration_ns)
        collector.flush_pending(net.sim.now)
        # Aggregation switches dropped every polling packet: the victim's
        # edge switch is reached but nothing beyond it.
        victim = scenario.victims[0]
        traced = engine.switches_traced_for(victim.key)
        assert all(not n.startswith("A") for n in traced)
        assert len(traced) <= 1


class TestProbeDrivenDiagnosis:
    def test_periodic_probing_finds_storm_without_app_traffic(self):
        """§5 operating scenarios: with probes, diagnosis runs periodically
        even when no application complains."""
        topo = build_fat_tree(k=4)
        net = Network(topo)
        deployment = HawkeyeDeployment(net)
        collector = TelemetryCollector(deployment)
        engine = PollingEngine(net, deployment)
        engine.add_mirror_listener(collector.on_polling_mirror)
        agent = DetectionAgent(net, AgentConfig())
        mesh = ProbeMesh(net, ProbeMeshConfig(interval_ns=usec(300)))
        mesh.start()

        # Feeder toward the injector so its ToR queue actually blocks.
        net.start_flow(net.make_flow("H1_0_0", "H0_0_0", 400 * KB, usec(10), src_port=9000))
        net.sim.schedule(usec(30), lambda: net.hosts["H0_0_0"].start_pfc_injection(msec(3)))
        net.run(msec(3))
        collector.flush_pending(net.sim.now)

        assert agent.triggers, "stalled probes must trigger diagnosis"
        assert collector.collected_switches(), "telemetry must be collected"


class TestLoadRobustness:
    @pytest.mark.parametrize("load", [0.0, 0.1, 0.2])
    def test_incast_diagnosis_under_background_load(self, load):
        scenario = incast_backpressure_scenario(seed=1, load=load)
        result = run_scenario(scenario, RunConfig())
        d = result.diagnosis()
        assert d is not None
        assert d.primary().anomaly is AnomalyType.MICRO_BURST_INCAST
