"""Runner tests: report selection, causal sets and full end-to-end runs."""

import pytest

from repro.baselines import SystemKind
from repro.core import AnomalyType
from repro.experiments import (
    RunConfig,
    causal_switches_of,
    diagnosis_correct,
    run_scenario,
    select_reports,
)
from repro.telemetry import SwitchReport
from repro.units import usec
from repro.workloads import (
    in_loop_deadlock_scenario,
    incast_backpressure_scenario,
    normal_contention_scenario,
    pfc_storm_scenario,
)


class TestSelectReports:
    def reports(self):
        return [
            SwitchReport(switch="SW", collect_time=t) for t in (100, 500, 900)
        ]

    def test_prefers_first_report_after_trigger(self):
        chosen = select_reports(self.reports(), trigger_time=400)
        assert chosen["SW"].collect_time == 500

    def test_falls_back_to_recent_before(self):
        chosen = select_reports(self.reports(), trigger_time=1000, slack_ns=200)
        assert chosen["SW"].collect_time == 900

    def test_falls_back_to_latest_when_all_old(self):
        chosen = select_reports(self.reports(), trigger_time=10**9)
        assert chosen["SW"].collect_time == 900

    def test_multiple_switches_independent(self):
        reports = self.reports() + [SwitchReport(switch="SX", collect_time=50)]
        chosen = select_reports(reports, trigger_time=400)
        assert chosen["SX"].collect_time == 50
        assert chosen["SW"].collect_time == 500


class TestCausalSwitches:
    def test_incast_causal_set(self):
        sc = incast_backpressure_scenario(seed=1)
        causal = causal_switches_of(sc, sc.victims[0].key)
        assert "E0_0" in causal  # the initial congestion switch
        assert "E0_1" in causal  # the victim's ToR

    def test_deadlock_causal_set_includes_loop(self):
        sc = in_loop_deadlock_scenario(seed=1)
        causal = causal_switches_of(sc, sc.victims[0].key)
        assert {"SW1", "SW2", "SW3", "SW4"} <= causal


class TestEndToEnd:
    """One full run per anomaly class (the §4.2 headline result)."""

    @pytest.mark.parametrize(
        "builder,expected",
        [
            (incast_backpressure_scenario, AnomalyType.MICRO_BURST_INCAST),
            (pfc_storm_scenario, AnomalyType.PFC_STORM),
            (in_loop_deadlock_scenario, AnomalyType.IN_LOOP_DEADLOCK),
            (normal_contention_scenario, AnomalyType.NORMAL_CONTENTION),
        ],
    )
    def test_hawkeye_diagnoses_correctly(self, builder, expected):
        sc = builder(seed=1)
        result = run_scenario(sc, RunConfig())
        d = result.diagnosis()
        assert d is not None
        assert d.primary().anomaly is expected
        assert diagnosis_correct(d, sc.truth)

    def test_full_coverage_of_causal_switches(self):
        sc = in_loop_deadlock_scenario(seed=1)
        result = run_scenario(sc, RunConfig())
        assert result.causal_coverage == 1.0

    def test_victim_only_misses_deadlock(self):
        sc = in_loop_deadlock_scenario(seed=1)
        result = run_scenario(sc, RunConfig(system=SystemKind.VICTIM_ONLY))
        d = result.diagnosis()
        assert d is None or not diagnosis_correct(d, sc.truth)

    def test_spidermon_blind_to_pfc(self):
        sc = incast_backpressure_scenario(seed=1)
        result = run_scenario(sc, RunConfig(system=SystemKind.SPIDERMON))
        d = result.diagnosis()
        # Without PFC visibility SpiderMon can at best report plain queue
        # contention (or nothing at all) — never the PFC anomaly classes.
        assert d is None or d.primary().anomaly in (
            AnomalyType.NORMAL_CONTENTION,
            AnomalyType.UNKNOWN,
        )

    def test_hawkeye_collects_fewer_switches_than_full_polling(self):
        sc = incast_backpressure_scenario(seed=1)
        hawkeye = run_scenario(sc, RunConfig())
        full = run_scenario(
            incast_backpressure_scenario(seed=1),
            RunConfig(system=SystemKind.FULL_POLLING),
        )
        assert len(hawkeye.collected_switches) < len(full.collected_switches)
        assert hawkeye.causal_coverage == 1.0

    def test_overhead_accounting_positive(self):
        sc = incast_backpressure_scenario(seed=1)
        result = run_scenario(sc, RunConfig())
        assert result.processing_bytes > 0
        assert result.bandwidth_bytes > 0
        assert result.polling_packets > 0

    def test_netsight_overheads_dwarf_hawkeye(self):
        hawkeye = run_scenario(incast_backpressure_scenario(seed=1), RunConfig())
        netsight = run_scenario(
            incast_backpressure_scenario(seed=1),
            RunConfig(system=SystemKind.NETSIGHT),
        )
        assert netsight.processing_bytes > 10 * hawkeye.processing_bytes
        assert netsight.bandwidth_bytes > 10 * hawkeye.bandwidth_bytes

    def test_large_epoch_still_detects_anomaly_type_family(self):
        """Epoch-size sweep sanity: a 2 ms epoch may lose precision but the
        pipeline must still produce a diagnosis."""
        sc = incast_backpressure_scenario(seed=1)
        result = run_scenario(sc, RunConfig(epoch_size_ns=2 << 20))
        assert result.diagnosis() is not None
