"""Shared-memory shard transport: codec properties and byte-identity.

The shm rings replace pickled pipes as the cross-shard frame carrier, so
the bar is the same as for sharding itself: *byte-identical* output.
Frames must survive the int64 codec tuple-equal (hypothesis, across the
full field space), and for every anomaly class a 2-shard run forced onto
the rings must produce the same diagnoses and the same canonical obs
trace as the pipe path — including when a deliberately tiny ring forces
the overflow fallback mid-run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    RunConfig,
    ScenarioSpec,
    run_scenario_sharded,
)
from repro.experiments import shardrun
from repro.experiments.shmring import (
    MAX_CAPACITY,
    PAYLOAD_WORDS,
    ROW_WORDS,
    ShmFrameTransport,
    ShmRingIntegrityError,
    build_transport,
)
from repro.obs import ObsConfig, canonical_jsonl
from repro.sim.packet import PacketType

ANOMALY_SCENARIOS = [
    "in-loop-deadlock",
    "out-of-loop-deadlock",
    "pfc-storm",
    "incast-backpressure",
    "lordma-attack",
    "normal-contention",
]

NODES = ["SW0", "SW1", "H0", "H1", "H2"]
IPS = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]


@pytest.fixture
def transport():
    t = ShmFrameTransport(2, NODES, IPS, capacity=64)
    yield t
    t.destroy()


def _frames_strategy():
    small = st.integers(min_value=0, max_value=2**31)
    flow5 = st.one_of(
        st.none(),
        st.tuples(
            st.sampled_from(IPS),
            st.sampled_from(IPS),
            st.integers(min_value=0, max_value=65535),
            st.integers(min_value=0, max_value=65535),
            st.integers(min_value=0, max_value=255),
        ),
    )
    wire = st.tuples(
        st.sampled_from([p.value for p in PacketType]),
        flow5,
        small,  # size
        st.integers(min_value=0, max_value=7),  # priority
        small,  # seq
        small,  # create_time
        st.booleans(),  # ecn_capable
        st.booleans(),  # ce_marked
        st.integers(min_value=0, max_value=7),  # pfc_priority
        st.integers(min_value=0, max_value=65535),  # pause_quanta
        st.integers(min_value=0, max_value=3),  # polling flag (int on wire)
        small,  # echo_time
        small,  # acked_bytes
        st.booleans(),  # is_last
        st.integers(min_value=0, max_value=64),  # hops
    )
    frame = st.tuples(
        small,  # arrival_ns
        st.sampled_from(NODES),  # target node
        st.integers(min_value=0, max_value=64),  # target port
        st.tuples(small, small, st.sampled_from(NODES), small),  # key
        wire,
    )
    return st.lists(frame, min_size=0, max_size=32)


class TestCodec:
    @settings(max_examples=50, deadline=None)
    @given(frames=_frames_strategy())
    def test_round_trip_is_tuple_equal(self, frames):
        """Any representable frame batch survives the rings unchanged."""
        t = ShmFrameTransport(2, NODES, IPS, capacity=64)
        try:
            written, leftover = t.write_epoch(0, 1, 0, frames)
            assert written == len(frames) and not leftover
            assert t.read_epoch(0, 1, 0, written) == frames
        finally:
            t.destroy()

    def test_row_width_matches_codec(self, transport):
        frame = (
            5, "SW0", 2, (1, 2, "H0", 3),
            (PacketType.DATA.value, None, 1000, 3, 7, 4,
             True, False, 0, 0, 0, 0, 0, False, 2),
        )
        assert len(transport.encode(frame)) == PAYLOAD_WORDS

    def test_unknown_vocabulary_misses_to_pipe(self, transport):
        stranger = (
            5, "NOT-A-NODE", 2, (1, 2, "H0", 3),
            (PacketType.DATA.value, None, 1000, 3, 7, 4,
             True, False, 0, 0, 0, 0, 0, False, 2),
        )
        written, leftover = transport.write_epoch(0, 1, 0, [stranger])
        assert written == 0 and leftover == [stranger]

    def test_oversize_field_misses_to_pipe(self, transport):
        huge = (
            2**70, "SW0", 2, (1, 2, "H0", 3),
            (PacketType.DATA.value, None, 1000, 3, 7, 4,
             True, False, 0, 0, 0, 0, 0, False, 2),
        )
        written, leftover = transport.write_epoch(0, 1, 0, [huge])
        assert written == 0 and leftover == [huge]

    def test_capacity_overflow_spills_in_order(self):
        t = ShmFrameTransport(2, NODES, IPS, capacity=2)
        try:
            frames = [
                (i, "SW0", 0, (i, 0, "H0", i),
                 (PacketType.DATA.value, None, 1, 0, i, 0,
                  False, False, 0, 0, 0, 0, 0, False, 0))
                for i in range(5)
            ]
            written, leftover = t.write_epoch(0, 1, 0, frames)
            assert written == 2
            assert leftover == frames[2:]
            assert t.read_epoch(0, 1, 0, written) == frames[:2]
        finally:
            t.destroy()

    def test_epoch_parity_halves_are_independent(self, transport):
        def frame(i):
            return (
                i, "SW1", 1, (i, 0, "H1", i),
                (PacketType.ACK.value, None, 64, 0, i, 0,
                 False, False, 0, 0, 0, 0, 0, True, 1),
            )

        even = [frame(1), frame(2)]
        odd = [frame(10)]
        transport.write_epoch(1, 0, 4, even)
        transport.write_epoch(1, 0, 5, odd)  # other half: must not clobber
        assert transport.read_epoch(1, 0, 4, 2) == even
        assert transport.read_epoch(1, 0, 5, 1) == odd

    def test_stale_row_from_earlier_epoch_is_detected(self, transport):
        """A row left by a dead writer two epochs back must not decode."""
        frame = (
            5, "SW0", 2, (1, 2, "H0", 3),
            (PacketType.DATA.value, None, 1000, 3, 7, 4,
             True, False, 0, 0, 0, 0, 0, False, 2),
        )
        transport.write_epoch(0, 1, 0, [frame])
        # Same parity half, later epoch: the stamp no longer matches.
        with pytest.raises(ShmRingIntegrityError, match="stale"):
            transport.read_epoch(0, 1, 2, 1)

    def test_torn_row_is_detected(self, transport):
        """A seal that disagrees with the stamp means a writer died
        mid-copy; the reader must refuse the row."""
        frame = (
            5, "SW0", 2, (1, 2, "H0", 3),
            (PacketType.DATA.value, None, 1000, 3, 7, 4,
             True, False, 0, 0, 0, 0, 0, False, 2),
        )
        transport.write_epoch(0, 1, 0, [frame])
        transport._words[transport._base(0, 1, 0) + ROW_WORDS - 1] = 0
        with pytest.raises(ShmRingIntegrityError):
            transport.read_epoch(0, 1, 0, 1)

    def test_never_written_row_never_validates(self, transport):
        """All-zero memory must not validate for any epoch (stamp packs
        epoch+1, so epoch 0 does not stamp as 0)."""
        for epoch in (0, 1, 2):
            with pytest.raises(ShmRingIntegrityError):
                transport.read_epoch(0, 1, epoch, 1)

    def test_capacity_beyond_stamp_index_space_is_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ShmFrameTransport(2, NODES, IPS, capacity=MAX_CAPACITY)
        from repro.topology.builders import build_fat_tree

        with pytest.raises(ValueError, match="capacity"):
            build_transport(2, build_fat_tree(4), capacity=MAX_CAPACITY)

    def test_build_transport_interns_topology_vocabulary(self):
        from repro.topology.builders import build_fat_tree

        topo = build_fat_tree(4)
        t = build_transport(2, topo)
        assert t is not None
        try:
            assert set(n.name for n in topo.nodes) <= set(t._node_id)
            assert all(
                topo.host_ip(h.name) in t._ip_id for h in topo.hosts
            )
        finally:
            t.destroy()


def _run_sharded(monkeypatch, name, mode):
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", mode)
    spec = ScenarioSpec(name, seed=1)
    obs = ObsConfig(trace=True, sink="ring")
    result = run_scenario_sharded(spec, RunConfig(obs=obs, shards=2))
    diagnoses = [
        o.diagnosis.describe() if o.diagnosis is not None else None
        for o in result.outcomes
    ]
    return diagnoses, canonical_jsonl(result.obs.tracer.records()), result.perf


@pytest.mark.parametrize("name", ANOMALY_SCENARIOS)
def test_shm_transport_is_byte_identical(monkeypatch, name):
    """Forced rings == pipes: same diagnoses, same canonical trace."""
    pipe_diag, pipe_trace, pipe_perf = _run_sharded(monkeypatch, name, "pipe")
    shm_diag, shm_trace, shm_perf = _run_sharded(monkeypatch, name, "shm")

    assert shm_diag == pipe_diag
    assert shm_trace == pipe_trace
    # Forced mode must actually exercise the rings, and the counters must
    # account for every cross-shard frame on exactly one path.
    assert shm_perf.transport["mode"] == "shm"
    assert shm_perf.transport["shm_frames"] > 0
    assert shm_perf.transport["pipe_frames"] == 0
    assert pipe_perf.transport["mode"] == "pipe"
    assert pipe_perf.transport["shm_frames"] == 0
    assert (
        shm_perf.transport["shm_frames"] == pipe_perf.transport["pipe_frames"]
    )


def test_overflow_fallback_stays_byte_identical(monkeypatch):
    """A tiny ring forces mid-run pipe spills without changing output."""
    pipe_diag, pipe_trace, _ = _run_sharded(monkeypatch, "pfc-storm", "pipe")
    monkeypatch.setattr(
        shardrun,
        "build_transport",
        lambda shards, topo: build_transport(shards, topo, capacity=4),
    )
    shm_diag, shm_trace, perf = _run_sharded(monkeypatch, "pfc-storm", "shm")

    assert shm_diag == pipe_diag
    assert shm_trace == pipe_trace
    assert perf.transport["shm_fallback_frames"] > 0
    assert perf.transport["shm_frames"] > 0
    assert perf.transport["pipe_frames"] == perf.transport["shm_fallback_frames"]


def test_auto_mode_reports_stage_and_counters(monkeypatch):
    """auto splits traffic by batch size and ships worker stage timings."""
    _, _, perf = _run_sharded(monkeypatch, "incast-backpressure", "auto")
    carried = perf.transport["shm_frames"] + perf.transport["pipe_frames"]
    assert carried > 0
    assert perf.transport["integrity_spills"] == 0  # healthy segment
    assert "shard_run" in perf.stages
    assert perf.stages["shard_run"]["max_wall_s"] <= perf.stages["shard_run"]["wall_s"]


def test_transport_counters_reach_perf_json(monkeypatch, tmp_path, capsys):
    """--perf-json on a sharded run records the transport accounting,
    including the overflow-spill and integrity-spill counters."""
    import json
    import os

    from repro.cli import main

    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "shm")
    monkeypatch.setattr(
        shardrun,
        "build_transport",
        lambda shards, topo: build_transport(shards, topo, capacity=4),
    )
    out = tmp_path / "perf.json"
    rc = main(["run", "pfc-storm", "--shards", "2", "--perf-json", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    transport = payload["runs"][0]["transport"]
    assert transport["mode"] == "shm"
    assert transport["shm_fallback_frames"] > 0
    assert transport["pipe_frames"] == transport["shm_fallback_frames"]
    assert transport["integrity_spills"] == 0
    assert payload["runs"][0]["supervision"]["fallback"] == "serial"
