"""Parallel analyzer fan-out: identical output, visible accounting.

``analyzer_jobs > 1`` fans victim diagnosis (and the per-epoch replay
prewarm) across forked workers.  Parallelism is an implementation detail
of the wall clock only: every outcome — verdict tuples, canonical obs
traces, incident lists — must match ``analyzer_jobs=1`` exactly, because
workers run the very same ``_diagnose_one`` body over fork-shared state.
"""

import pytest

from repro.experiments import (
    AnalyzerConfig,
    RunConfig,
    ScenarioSpec,
    deploy_analyzer,
    run_scenario,
)
from repro.experiments.analyzerpool import fork_available
from repro.sim import Network
from repro.topology import build_line
from repro.units import KB, msec, usec

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="analyzer pool needs fork start method"
)

# Multi-victim deadlock: four flows trigger, so the pool path (one
# worker per victim) is actually exercised; pfc-storm covers the
# single-victim prewarm path.
PARALLEL_SCENARIOS = ["in-loop-deadlock", "pfc-storm"]


def _outcomes(name, jobs):
    spec = ScenarioSpec(name, seed=1)
    result = run_scenario(spec.build(), RunConfig(analyzer_jobs=jobs))
    return result


@pytest.mark.parametrize("name", PARALLEL_SCENARIOS)
def test_jobs_do_not_change_outcomes(name):
    serial = _outcomes(name, 1)
    fanned = _outcomes(name, 2)
    assert len(fanned.outcomes) == len(serial.outcomes)
    for a, b in zip(serial.outcomes, fanned.outcomes):
        assert a.victim == b.victim
        assert (a.diagnosis is None) == (b.diagnosis is None)
        if a.diagnosis is not None:
            assert b.diagnosis.describe() == a.diagnosis.describe()
        assert b.reports_used.keys() == a.reports_used.keys()


def test_parallel_run_reports_worker_stages():
    result = _outcomes("in-loop-deadlock", 2)
    stages = result.perf.stages
    # The fan-out either ran (graph_build absorbed from workers) or fell
    # back serially; both keep graph_build in the profile.
    assert "graph_build" in stages
    assert "diagnose" in stages


def test_prewarm_path_appears_in_profile():
    result = _outcomes("pfc-storm", 2)
    assert "replay_prewarm" in result.perf.stages


def test_more_jobs_than_victims_is_harmless():
    """jobs far above the concurrent-victim count must not change output
    (the pool clamps its worker count to the pending list)."""
    serial = _outcomes("in-loop-deadlock", 1)
    fanned = _outcomes("in-loop-deadlock", 8)
    assert len(fanned.outcomes) == len(serial.outcomes)
    for a, b in zip(serial.outcomes, fanned.outcomes):
        assert (a.diagnosis is None) == (b.diagnosis is None)
        if a.diagnosis is not None:
            assert b.diagnosis.describe() == a.diagnosis.describe()


class TestAnalyzerSupervision:
    """A dead or hung pool worker forfeits the pool; the parent recovers
    every unfinished victim serially — identical outcomes, bounded time."""

    @pytest.fixture
    def abort_hook(self):
        from repro.experiments import analyzerpool

        def install(fn):
            analyzerpool._TEST_ANALYZER_ABORT = fn

        yield install
        analyzerpool._TEST_ANALYZER_ABORT = None

    def _run(self, jobs=2, timeout=None):
        spec = ScenarioSpec("in-loop-deadlock", seed=1)
        return run_scenario(
            spec.build(),
            RunConfig(analyzer_jobs=jobs, shard_timeout_s=timeout),
        )

    def test_sigkilled_worker_victim_recovered_serially(self, abort_hook):
        serial = self._run(jobs=1)
        abort_hook(lambda idx: "sigkill" if idx == 0 else None)
        fanned = self._run(jobs=2, timeout=30)
        assert len(fanned.outcomes) == len(serial.outcomes)
        for a, b in zip(serial.outcomes, fanned.outcomes):
            assert (a.diagnosis is None) == (b.diagnosis is None)
            if a.diagnosis is not None:
                assert b.diagnosis.describe() == a.diagnosis.describe()
        assert "analyzer_recover" in fanned.perf.stages

    def test_hung_worker_bounded_and_recovered(self, abort_hook):
        import time

        serial = self._run(jobs=1)
        abort_hook(lambda idx: "hang" if idx == 1 else None)
        start = time.monotonic()
        fanned = self._run(jobs=2, timeout=2.0)
        assert time.monotonic() - start < 60
        for a, b in zip(serial.outcomes, fanned.outcomes):
            if a.diagnosis is not None:
                assert b.diagnosis.describe() == a.diagnosis.describe()
        assert "analyzer_recover" in fanned.perf.stages


def test_analyzer_service_jobs_match_serial():
    """The continuous service path with jobs=2 diagnoses identically."""

    def run(jobs):
        topo = build_line(num_switches=3, hosts_per_switch=4)
        net = Network(topo)
        analyzer = deploy_analyzer(
            net, config=AnalyzerConfig(analyzer_jobs=jobs)
        )
        for i, src in enumerate(
            ["H1_1", "H2_0", "H2_1", "H2_2", "H3_1", "H3_2"]
        ):
            net.start_flow(
                net.make_flow(src, "H3_0", 500 * KB, usec(10), src_port=11000 + i)
            )
        net.start_flow(net.make_flow("H1_0", "H2_1", 300 * KB, usec(5), src_port=12000))
        net.run(msec(8))
        return [
            i.diagnosis.describe() if i.diagnosis is not None else None
            for i in analyzer.incidents
        ]

    assert run(2) == run(1)
