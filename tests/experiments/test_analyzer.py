"""Analyzer service tests: continuous diagnosis, incident dedup."""

import pytest

from repro.core import AnomalyType
from repro.experiments import AnalyzerConfig, deploy_analyzer
from repro.sim import Network
from repro.topology import build_line
from repro.units import KB, msec, usec


def backpressured_line():
    """A line fabric with an incast whose PFC pauses a bystander victim."""
    topo = build_line(num_switches=3, hosts_per_switch=4)
    net = Network(topo)
    analyzer = deploy_analyzer(net)
    for i, src in enumerate(["H1_1", "H2_0", "H2_1", "H2_2", "H3_1", "H3_2"]):
        net.start_flow(net.make_flow(src, "H3_0", 500 * KB, usec(10), src_port=11000 + i))
    victim = net.make_flow("H1_0", "H2_1", 300 * KB, usec(5), src_port=12000)
    net.start_flow(victim)
    return net, analyzer, victim


class TestContinuousOperation:
    def test_incident_created_and_diagnosed(self):
        net, analyzer, victim = backpressured_line()
        net.run(msec(8))
        diagnosed = analyzer.diagnosed_incidents()
        assert diagnosed, "the anomaly must become a diagnosed incident"
        primary = diagnosed[0].diagnosis.primary()
        assert primary.anomaly is AnomalyType.MICRO_BURST_INCAST

    def test_concurrent_complaints_share_one_incident(self):
        """Multiple victims of the same anomaly (overlapping traces within
        the incident window) produce one incident, not one each."""
        net, analyzer, victim = backpressured_line()
        net.run(msec(8))
        bursts_of_triggers = len(analyzer.agent.triggers)
        assert bursts_of_triggers >= 2
        # Far fewer incidents than triggers: complaints were coalesced.
        assert len(analyzer.incidents) < bursts_of_triggers
        assert any(len(i.victims) >= 2 for i in analyzer.incidents)

    def test_incident_lookup_by_victim(self):
        net, analyzer, victim = backpressured_line()
        net.run(msec(8))
        all_victims = {v for i in analyzer.incidents for v in i.victims}
        assert victim.key in all_victims
        assert analyzer.incidents_for(victim.key)

    def test_summary_renders(self):
        net, analyzer, victim = backpressured_line()
        net.run(msec(8))
        text = analyzer.summary()
        assert "incident" in text
        assert "pfc" in text

    def test_healthy_network_produces_no_incidents(self, tiny_net):
        analyzer = deploy_analyzer(tiny_net)
        tiny_net.start_flow(tiny_net.make_flow("A", "B", 50 * KB, usec(1)))
        tiny_net.run(msec(5))
        assert analyzer.incidents == []

    def test_separated_anomalies_separate_incidents(self):
        """Two storms far apart in time become two incidents."""
        topo = build_line(num_switches=3, hosts_per_switch=4)
        net = Network(topo)
        analyzer = deploy_analyzer(net, config=AnalyzerConfig())
        # One feeder per storm so the frozen port blocks live traffic.
        net.start_flow(net.make_flow("H1_0", "H3_0", 2_000 * KB, usec(1), src_port=1))
        net.hosts["H3_0"].start_pfc_injection(usec(600))
        net.start_flow(net.make_flow("H1_0", "H3_0", 2_000 * KB, msec(4), src_port=2))
        net.sim.schedule(
            msec(4) + usec(10), lambda: net.hosts["H3_0"].start_pfc_injection(usec(600))
        )
        net.run(msec(8))
        assert len(analyzer.incidents) >= 2
