"""Worker supervision: watchdog, fallbacks, and leak-free cleanup.

The chaos contract for the parallel planes: a shard worker that dies
(SIGKILL), hangs, or poisons its shm ring must never hang the parent,
never strand a ``/dev/shm`` segment or a child process, and never
produce a *wrong* full-confidence verdict.  Depending on
``REPRO_SHARD_FALLBACK`` the parent either reruns serially
(byte-identical result), finishes the survivors (degraded diagnosis), or
raises.
"""

import glob
import multiprocessing
import time

import pytest

from repro.experiments import (
    RunConfig,
    ScenarioSpec,
    run_scenario,
    run_scenario_sharded,
)
from repro.experiments import shardrun
from repro.experiments.supervise import (
    resolve_fallback,
    resolve_timeout,
    resolve_transport_mode,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard supervision tests need the fork start method",
)

SPEC = ScenarioSpec("pfc-storm", seed=7)


def _diagnoses(result):
    return [
        o.diagnosis.describe() if o.diagnosis is not None else None
        for o in result.outcomes
    ]


@pytest.fixture
def abort_hook():
    """Install a worker-abort hook for the test, always uninstall after."""

    def install(fn):
        shardrun._TEST_WORKER_ABORT = fn

    yield install
    shardrun._TEST_WORKER_ABORT = None


@pytest.fixture
def leak_check():
    """Assert no shm segments and no orphaned children survive the test."""
    before = set(glob.glob("/dev/shm/*"))
    yield
    # join_all: any worker the runner failed to reap would show up here.
    assert multiprocessing.active_children() == []
    assert set(glob.glob("/dev/shm/*")) - before == set()


class TestSerialFallback:
    def test_sigkilled_worker_falls_back_byte_identical(
        self, abort_hook, leak_check
    ):
        """SIGKILL mid-run -> serial rerun, identical diagnoses, no leaks."""
        serial = run_scenario(SPEC.build(), RunConfig())
        abort_hook(lambda sid, ep: "sigkill" if (sid == 1 and ep == 3) else None)
        result = run_scenario_sharded(
            SPEC, RunConfig(shards=2, shard_timeout_s=30)
        )
        assert _diagnoses(result) == _diagnoses(serial)
        supervision = result.perf.supervision
        assert supervision["fallback_ran"] == "serial"
        assert supervision["lost_shards"] == [1]
        assert supervision["failure_kind"] == "worker"

    def test_worker_killed_before_first_barrier_leaves_no_segment(
        self, abort_hook, leak_check
    ):
        """The fork-to-first-barrier window must not strand the segment."""
        serial = run_scenario(SPEC.build(), RunConfig())
        abort_hook(lambda sid, ep: "sigkill" if (sid == 0 and ep == 0) else None)
        result = run_scenario_sharded(
            SPEC, RunConfig(shards=2, shard_timeout_s=30)
        )
        assert _diagnoses(result) == _diagnoses(serial)
        assert result.perf.supervision["fallback_ran"] == "serial"

    def test_hung_worker_is_bounded_by_watchdog(self, abort_hook, leak_check):
        """A wedged worker ends the run within the timeout, not never."""
        serial = run_scenario(SPEC.build(), RunConfig())
        abort_hook(lambda sid, ep: "hang" if (sid == 1 and ep == 5) else None)
        start = time.monotonic()
        result = run_scenario_sharded(
            SPEC, RunConfig(shards=2, shard_timeout_s=2.0)
        )
        # Watchdog (2 s) + serial rerun; generous bound for slow CI.
        assert time.monotonic() - start < 60
        assert _diagnoses(result) == _diagnoses(serial)
        assert result.perf.supervision["fallback_ran"] == "serial"

    def test_corrupted_ring_is_a_transport_failure(self, abort_hook, leak_check):
        """A torn/stale ring row is detected and classified, then recovered."""
        serial = run_scenario(SPEC.build(), RunConfig())
        abort_hook(
            lambda sid, ep: "corrupt-ring" if (sid == 1 and ep >= 10) else None
        )
        result = run_scenario_sharded(
            SPEC, RunConfig(shards=2, shard_timeout_s=30)
        )
        assert _diagnoses(result) == _diagnoses(serial)
        assert result.perf.supervision["failure_kind"] == "transport"


class TestFailMode:
    def test_fail_mode_raises(self, abort_hook, leak_check, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_FALLBACK", "fail")
        abort_hook(lambda sid, ep: "sigkill" if (sid == 0 and ep == 2) else None)
        with pytest.raises(RuntimeError, match="REPRO_SHARD_FALLBACK=fail"):
            run_scenario_sharded(SPEC, RunConfig(shards=2, shard_timeout_s=30))


class TestDegradeMode:
    def test_degrade_returns_partial_never_full_confidence(
        self, abort_hook, leak_check, monkeypatch
    ):
        """Losing a pod late yields a diagnosis that admits what's missing."""
        clean = run_scenario_sharded(SPEC, RunConfig(shards=2))
        late = clean.perf.barrier_epochs - 3
        assert late > 0
        monkeypatch.setenv("REPRO_SHARD_FALLBACK", "degrade")
        # Shard 1 holds remote telemetry for this victim; shard 0 keeps the
        # trigger, so a diagnosis is still produced — degraded.
        abort_hook(
            lambda sid, ep: "sigkill" if (sid == 1 and ep == late) else None
        )
        result = run_scenario_sharded(
            SPEC, RunConfig(shards=2, shard_timeout_s=30)
        )
        supervision = result.perf.supervision
        assert supervision["fallback_ran"] == "degrade"
        assert supervision["lost_shards"] == [1]
        assert any("shard_worker_lost" in line for line in result.fault_incidents)
        produced = [o.diagnosis for o in result.outcomes if o.diagnosis is not None]
        assert produced, "survivor shard held the trigger; expected a verdict"
        for diagnosis in produced:
            assert diagnosis.confidence != "full"
            assert diagnosis.completeness < 1.0
            assert diagnosis.missing_switches

    def test_degrade_with_victim_shard_lost_gives_no_verdict(
        self, abort_hook, leak_check, monkeypatch
    ):
        """Losing the victim's own pod early means no verdict — which is
        still never a wrong full-confidence one."""
        monkeypatch.setenv("REPRO_SHARD_FALLBACK", "degrade")
        abort_hook(lambda sid, ep: "sigkill" if (sid == 0 and ep == 3) else None)
        result = run_scenario_sharded(
            SPEC, RunConfig(shards=2, shard_timeout_s=30)
        )
        assert result.perf.supervision["fallback_ran"] == "degrade"
        for outcome in result.outcomes:
            if outcome.diagnosis is not None:
                assert outcome.diagnosis.confidence != "full"


class TestPolicyValidation:
    def test_unknown_transport_env_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "shmem")
        with pytest.raises(ValueError, match="REPRO_SHARD_TRANSPORT"):
            resolve_transport_mode()
        with pytest.raises(ValueError, match="REPRO_SHARD_TRANSPORT"):
            run_scenario_sharded(SPEC, RunConfig(shards=2))

    def test_unknown_fallback_env_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_FALLBACK", "retry-forever")
        with pytest.raises(ValueError, match="REPRO_SHARD_FALLBACK"):
            resolve_fallback()

    @pytest.mark.parametrize("raw", ["0", "-3", "soon"])
    def test_bad_timeout_env_is_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", raw)
        with pytest.raises(ValueError, match="REPRO_SHARD_TIMEOUT"):
            resolve_timeout()

    def test_timeout_precedence_config_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "120")
        assert resolve_timeout(5.0) == 5.0
        assert resolve_timeout() == 120.0
        monkeypatch.delenv("REPRO_SHARD_TIMEOUT")
        assert resolve_timeout() == 60.0

    def test_nonpositive_config_timeout_is_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_timeout(0)

    @pytest.mark.parametrize("value", ["0", "-2.5"])
    def test_cli_rejects_nonpositive_shard_timeout(self, value):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "pfc-storm", "--shard-timeout", value])
