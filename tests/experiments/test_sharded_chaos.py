"""Sharded fault injection: chaos parity at scale.

Per-shard injectors draw every fault fate from ``(category, entity)``
RNG streams, so a switch's faults are identical whether it is simulated
in-process or in any worker — and the per-shard incident logs merge
canonically.  The acceptance bar mirrors the sharding bar itself: for
the anomaly classes under ≤10% control-path loss, ``shards=N`` must
produce the same verdicts, the same merged incident log, and the same
fault counters as the single-process chaos run; monitor-on sharded runs
must raise the same alerts.
"""

import multiprocessing

import pytest

from repro.experiments import (
    RunConfig,
    ScenarioSpec,
    run_scenario,
    run_scenario_sharded,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.faults.chaos import run_chaos_cell
from repro.monitor import MonitorConfig
from repro.monitor.merge import alert_sort_key
from repro.units import usec

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded chaos tests need the fork start method",
)

CHAOS_SCENARIOS = [
    "pfc-storm",
    "in-loop-deadlock",
    "out-of-loop-deadlock",
    "incast-backpressure",
    "lordma-attack",
]

LOSSY = FaultPlan.lossy(0.10, seed=11)

# Every fault category at once, all within the ≤10% chaos envelope.
FULL_PLAN = FaultPlan(
    seed=3,
    polling_loss_rate=0.08,
    polling_corrupt_rate=0.02,
    report_loss_rate=0.08,
    report_truncate_rate=0.05,
    report_delay_rate=0.05,
    dma_failure_rate=0.05,
    dma_stale_rate=0.05,
    agent_restart_rate=0.02,
    clock_skew_max_ns=usec(2),
)


def _chaos_fingerprint(result):
    return (
        [
            o.diagnosis.describe() if o.diagnosis is not None else None
            for o in result.outcomes
        ],
        result.fault_incidents,
        result.fault_counters,
    )


@pytest.mark.parametrize("name", CHAOS_SCENARIOS)
def test_lossy_parity_two_shards(name):
    """10% loss + retries: verdicts and incident logs match in-process."""
    spec = ScenarioSpec(name, seed=5)
    config = dict(faults=LOSSY, retry=RetryPolicy())
    serial = run_scenario(spec.build(), RunConfig(**config))
    sharded = run_scenario_sharded(spec, RunConfig(shards=2, **config))
    assert _chaos_fingerprint(sharded) == _chaos_fingerprint(serial)


def test_full_category_parity_across_shard_counts():
    """Every fault category at once, identical at shards 1, 2 and 4."""
    spec = ScenarioSpec("pfc-storm", seed=5)
    config = dict(faults=FULL_PLAN, retry=RetryPolicy())
    serial = _chaos_fingerprint(run_scenario(spec.build(), RunConfig(**config)))
    assert serial[1], "plan injected nothing; parity check is vacuous"
    for shards in (2, 4):
        sharded = run_scenario_sharded(spec, RunConfig(shards=shards, **config))
        assert _chaos_fingerprint(sharded) == serial, f"shards={shards}"


def test_monitor_alert_parity():
    """Per-shard monitors merge to the single-process alert stream.

    The merged stream is canonically sorted; the in-process monitor
    emits same-instant alerts in rule-table order — so compare against
    the canonical sort of the serial stream.
    """
    spec = ScenarioSpec("pfc-storm", seed=7)
    config = dict(
        faults=LOSSY, retry=RetryPolicy(), monitor=MonitorConfig()
    )
    serial = run_scenario(spec.build(), RunConfig(**config))
    sharded = run_scenario_sharded(spec, RunConfig(shards=2, **config))
    assert sharded.monitor is not None
    assert sharded.monitor.alerts == sorted(
        serial.monitor.alerts, key=alert_sort_key
    )
    assert len(sharded.monitor.timeline.incidents) == len(
        serial.monitor.timeline.incidents
    )
    counters = sharded.monitor.counters()
    assert counters["alerts_total"] == len(serial.monitor.alerts)
    assert counters["samples"] == serial.monitor.counters()["samples"]


def test_chaos_cell_runs_sharded():
    """The chaos harness itself can run cells on the sharded engine."""
    cell = run_chaos_cell(
        "pfc-storm", FaultPlan.lossy(0.05, seed=1), RetryPolicy(), 0.05,
        shards=2,
    )
    assert not cell.crashed, cell.error
    assert not cell.wrong_full_confidence
    assert cell.incident_log  # faults actually fired through the shards

    serial = run_chaos_cell(
        "pfc-storm", FaultPlan.lossy(0.05, seed=1), RetryPolicy(), 0.05
    )
    assert cell.diagnosed == serial.diagnosed
    assert cell.incident_log == serial.incident_log
    assert cell.fault_counters == serial.fault_counters


def test_retry_policy_tighter_than_lookahead_falls_back_serially():
    """A retry whose first check can land inside one epoch cannot be
    sharded safely; the runner must detect it and go serial."""
    spec = ScenarioSpec("pfc-storm", seed=5)
    tight = RetryPolicy(report_timeout_ns=1)
    result = run_scenario_sharded(
        spec, RunConfig(shards=2, faults=LOSSY, retry=tight)
    )
    # Serial execution: no barrier accounting on the result.
    assert result.perf is None or result.perf.shards <= 1
