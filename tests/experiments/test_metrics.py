"""Scoring tests: the paper's TP/FP/FN accounting."""

import pytest

from repro.core import AnomalyType, Diagnosis, Finding, RootCauseKind
from repro.experiments import AccuracyCounter, ScoreConfig, diagnosis_correct
from repro.sim import FlowKey
from repro.topology import PortRef
from repro.workloads import GroundTruth


def key(i):
    return FlowKey("10.0.0.1", "10.0.0.2", 1000 + i, 4791)


def diagnosis(anomaly, culprits=(), injector=None):
    finding = Finding(
        anomaly=anomaly,
        root_cause=(
            RootCauseKind.HOST_PFC_INJECTION
            if injector
            else RootCauseKind.FLOW_CONTENTION
        ),
        initial_port=PortRef("SW", 1),
        culprit_flows=[(k, 10.0) for k in culprits],
        injecting_source=injector,
    )
    return Diagnosis(victim=key(0), findings=[finding])


class TestDiagnosisCorrect:
    def test_type_mismatch_fails(self):
        truth = GroundTruth(anomaly=AnomalyType.PFC_STORM, injecting_host="H")
        d = diagnosis(AnomalyType.MICRO_BURST_INCAST, culprits=[key(1)])
        assert not diagnosis_correct(d, truth)

    def test_injector_must_match(self):
        truth = GroundTruth(anomaly=AnomalyType.PFC_STORM, injecting_host="H1")
        assert diagnosis_correct(diagnosis(AnomalyType.PFC_STORM, injector="H1"), truth)
        assert not diagnosis_correct(diagnosis(AnomalyType.PFC_STORM, injector="H2"), truth)

    def test_culprit_recall_threshold(self):
        truth = GroundTruth(
            anomaly=AnomalyType.MICRO_BURST_INCAST,
            culprit_flows=[key(i) for i in range(1, 5)],
        )
        good = diagnosis(AnomalyType.MICRO_BURST_INCAST, culprits=[key(1), key(2)])
        assert diagnosis_correct(good, truth)

    def test_noise_threshold(self):
        truth = GroundTruth(
            anomaly=AnomalyType.MICRO_BURST_INCAST, culprit_flows=[key(1)]
        )
        noisy = diagnosis(
            AnomalyType.MICRO_BURST_INCAST,
            culprits=[key(1), key(8), key(9)],  # 2/3 innocents blamed
        )
        assert not diagnosis_correct(noisy, truth)

    def test_dominant_single_culprit_accepted_when_clean(self):
        truth = GroundTruth(
            anomaly=AnomalyType.NORMAL_CONTENTION,
            culprit_flows=[key(i) for i in range(1, 7)],
        )
        d = diagnosis(AnomalyType.NORMAL_CONTENTION, culprits=[key(3)])
        assert diagnosis_correct(d, truth)

    def test_single_wrong_culprit_rejected(self):
        truth = GroundTruth(
            anomaly=AnomalyType.NORMAL_CONTENTION, culprit_flows=[key(1)]
        )
        d = diagnosis(AnomalyType.NORMAL_CONTENTION, culprits=[key(9)])
        assert not diagnosis_correct(d, truth)

    def test_empty_culprits_rejected_when_truth_has_some(self):
        truth = GroundTruth(
            anomaly=AnomalyType.MICRO_BURST_INCAST, culprit_flows=[key(1)]
        )
        assert not diagnosis_correct(diagnosis(AnomalyType.MICRO_BURST_INCAST), truth)

    def test_type_only_truth(self):
        truth = GroundTruth(anomaly=AnomalyType.IN_LOOP_DEADLOCK)
        assert diagnosis_correct(diagnosis(AnomalyType.IN_LOOP_DEADLOCK), truth)

    def test_custom_config(self):
        truth = GroundTruth(
            anomaly=AnomalyType.MICRO_BURST_INCAST,
            culprit_flows=[key(i) for i in range(1, 11)],
        )
        # One innocent in the report disables the clean-subset leniency, so
        # the strict recall threshold decides — and fails.
        d = diagnosis(
            AnomalyType.MICRO_BURST_INCAST, culprits=[key(1), key(2), key(3), key(4),
                                                      key(5), key(6), key(7), key(99)]
        )
        strict = ScoreConfig(culprit_recall_threshold=0.9)
        assert not diagnosis_correct(d, truth, strict)
        lenient = ScoreConfig(culprit_recall_threshold=0.5)
        assert diagnosis_correct(d, truth, lenient)


class TestAccuracyCounter:
    def test_tally(self):
        truth = GroundTruth(anomaly=AnomalyType.PFC_STORM, injecting_host="H")
        acc = AccuracyCounter()
        acc.add(diagnosis(AnomalyType.PFC_STORM, injector="H"), truth)  # TP
        acc.add(diagnosis(AnomalyType.MICRO_BURST_INCAST, culprits=[key(1)]), truth)  # FP
        acc.add(None, truth)  # FN
        assert (acc.tp, acc.fp, acc.fn) == (1, 1, 1)
        assert acc.precision == pytest.approx(0.5)
        # Paper semantics: "recalled" = reported at all.
        assert acc.recall == pytest.approx(2 / 3)

    def test_empty_diagnosis_counts_fn(self):
        truth = GroundTruth(anomaly=AnomalyType.PFC_STORM, injecting_host="H")
        acc = AccuracyCounter()
        acc.add(Diagnosis(victim=key(0)), truth)
        assert acc.fn == 1

    def test_zero_division_guards(self):
        acc = AccuracyCounter()
        assert acc.precision == 0.0 and acc.recall == 0.0

    def test_labels_recorded(self):
        truth = GroundTruth(anomaly=AnomalyType.PFC_STORM, injecting_host="H")
        acc = AccuracyCounter()
        acc.add(diagnosis(AnomalyType.PFC_STORM, injector="H"), truth, label="run1")
        assert acc.labels == ["TP run1"]
