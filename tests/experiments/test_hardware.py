"""Hardware model tests (Fig 13 / §4.5 shapes)."""

import pytest

from repro.experiments import (
    cpu_poll_time_ms,
    telemetry_memory,
    tofino_resource_usage,
    total_collection_time_ms,
)


class TestTelemetryMemory:
    def test_flow_memory_scales_with_flows(self):
        small = telemetry_memory(num_epochs=4, flow_slots=1024)
        big = telemetry_memory(num_epochs=4, flow_slots=4096)
        assert big.flow_telemetry == 4 * small.flow_telemetry
        # Fig 13(b): causality + port telemetry are flow-count independent.
        assert big.causality_structure == small.causality_structure
        assert big.port_telemetry == small.port_telemetry

    def test_memory_scales_with_epochs(self):
        two = telemetry_memory(num_epochs=2, flow_slots=4096)
        four = telemetry_memory(num_epochs=4, flow_slots=4096)
        assert four.flow_telemetry == 2 * two.flow_telemetry

    def test_flow_telemetry_dominates(self):
        usage = telemetry_memory(num_epochs=4, flow_slots=4096, num_ports=64)
        assert usage.flow_telemetry > usage.port_telemetry

    def test_total(self):
        usage = telemetry_memory(num_epochs=2, flow_slots=128, num_ports=8)
        assert usage.total == (
            usage.flow_telemetry + usage.port_telemetry + usage.causality_structure
        )


class TestTofinoUsage:
    def test_all_resources_within_budget(self):
        usage = tofino_resource_usage()
        assert usage, "must report a breakdown"
        assert all(0 < v <= 1.0 for v in usage.values())

    def test_expected_resource_classes(self):
        usage = tofino_resource_usage()
        assert {"SRAM", "PHV", "Stages"} <= set(usage)


class TestCpuPoller:
    def test_paper_calibration_points(self):
        """§4.5: ~80 ms for 2 epochs, ~120 ms for 4 (64 ports, 4096 flows)."""
        assert cpu_poll_time_ms(2) == pytest.approx(80, rel=0.05)
        assert cpu_poll_time_ms(4) == pytest.approx(120, rel=0.05)

    def test_scales_with_flow_slots(self):
        assert cpu_poll_time_ms(2, flow_slots=8192) > cpu_poll_time_ms(2, flow_slots=4096)

    def test_total_collection_independent_of_switch_count(self):
        """Parallel per-switch CPU polling: fabric size does not matter."""
        assert total_collection_time_ms(1, 4) == total_collection_time_ms(100, 4)
