"""Sweep utility tests: grid construction, running, CSV export."""

import io

import pytest

from repro.baselines import SystemKind
from repro.experiments import (
    SweepPoint,
    best_configuration,
    grid,
    run_sweep,
    write_csv,
)
from repro.units import usec
from repro.workloads import SCENARIO_BUILDERS


class TestGrid:
    def test_cartesian_product(self):
        points = grid(
            scenarios=["a", "b"],
            systems=[SystemKind.HAWKEYE, SystemKind.SPIDERMON],
            epoch_sizes_ns=[1, 2, 3],
            thresholds=[2.0],
        )
        assert len(points) == 2 * 2 * 3 * 1

    def test_defaults(self):
        points = grid(scenarios=["x"])
        assert len(points) == 1
        assert points[0].system is SystemKind.HAWKEYE

    def test_run_config_mapping(self):
        point = SweepPoint("s", SystemKind.PORT_ONLY, usec(100), 2.5)
        config = point.run_config()
        assert config.system is SystemKind.PORT_ONLY
        assert config.epoch_size_ns == usec(100)
        assert config.threshold_multiplier == 2.5


class TestRunSweep:
    def test_single_cell_sweep(self):
        points = grid(scenarios=["pfc-storm"])
        results = run_sweep(points, SCENARIO_BUILDERS, seeds=[1])
        assert len(results) == 1
        assert results[0].accuracy.total == 1
        assert results[0].accuracy.precision == 1.0
        assert results[0].processing_bytes > 0

    def test_progress_callback(self):
        seen = []
        points = grid(scenarios=["pfc-storm"])
        run_sweep(points, SCENARIO_BUILDERS, seeds=[1], progress=seen.append)
        assert seen == points

    def test_multi_system_cells(self):
        points = grid(
            scenarios=["pfc-storm"],
            systems=[SystemKind.HAWKEYE, SystemKind.SPIDERMON],
        )
        results = run_sweep(points, SCENARIO_BUILDERS, seeds=[1])
        by_system = {r.point.system: r.accuracy.precision for r in results}
        assert by_system[SystemKind.HAWKEYE] > by_system[SystemKind.SPIDERMON]


class TestOutputs:
    def test_csv_round_shape(self):
        points = grid(scenarios=["pfc-storm"])
        results = run_sweep(points, SCENARIO_BUILDERS, seeds=[1])
        buffer = io.StringIO()
        rows = write_csv(results, buffer)
        assert rows == 1
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("scenario,system,epoch_ns")
        assert "pfc-storm" in lines[1]

    def test_best_configuration(self):
        points = grid(
            scenarios=["pfc-storm"],
            systems=[SystemKind.HAWKEYE, SystemKind.SPIDERMON],
        )
        results = run_sweep(points, SCENARIO_BUILDERS, seeds=[1])
        best = best_configuration(results)
        assert best is not None
        assert best.point.system is SystemKind.HAWKEYE

    def test_best_of_empty(self):
        assert best_configuration([]) is None


class TestCliSweep:
    def test_cli_sweep_with_csv(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.csv"
        rc = main(["sweep", "pfc-storm", "--seeds", "1", "--csv", str(out)])
        assert rc == 0
        assert out.read_text().count("\n") >= 2
        stdout = capsys.readouterr().out
        assert "sweeping 1 cells" in stdout
