"""Sharded runner equivalence: byte-identical diagnoses and obs traces.

The acceptance bar for the sharded simulator is not "statistically
similar" — it is *byte-identical* output.  For every anomaly class the
2-shard run must produce the same Diagnosis verdict tuple and the same
canonical observability trace as the single-process engine, so that a
diagnosis made on a sharded fleet run can be trusted exactly as much as
one made in-process.

Traces are compared in canonical form (:func:`repro.obs.canonical_jsonl`):
span ids are allocation-order artifacts that legitimately differ across
process layouts, so records are renumbered by content signature before
the byte comparison.
"""

import pytest

from repro.experiments import (
    RunConfig,
    ScenarioSpec,
    run_scenario,
    run_scenario_sharded,
)
from repro.faults import FaultPlan
from repro.obs import ObsConfig, canonical_jsonl

ANOMALY_SCENARIOS = [
    "in-loop-deadlock",
    "out-of-loop-deadlock",
    "pfc-storm",
    "incast-backpressure",
    "lordma-attack",
    "normal-contention",
]


def _describe(result):
    diagnosis = result.diagnosis()
    return diagnosis.describe() if diagnosis else None


def _canonical_trace(result):
    assert result.obs is not None
    return canonical_jsonl(result.obs.tracer.records())


@pytest.mark.parametrize("name", ANOMALY_SCENARIOS)
def test_two_shards_match_single_process(name):
    spec = ScenarioSpec(name, seed=1)
    obs = ObsConfig(trace=True, sink="ring")
    single = run_scenario(spec.build(), RunConfig(obs=obs))
    sharded = run_scenario_sharded(spec, RunConfig(obs=obs, shards=2))

    assert sharded.perf is not None and sharded.perf.shards == 2
    assert _describe(sharded) == _describe(single)
    assert len(sharded.outcomes) == len(single.outcomes)
    assert sharded.collected_switches == single.collected_switches
    assert _canonical_trace(sharded) == _canonical_trace(single)


def test_shard_request_of_one_runs_in_process():
    spec = ScenarioSpec("incast-backpressure", seed=1)
    result = run_scenario_sharded(spec, RunConfig(shards=1))
    assert result.perf is None or result.perf.shards <= 1  # in-process path
    assert _describe(result) is not None


def test_unsupported_features_are_rejected():
    spec = ScenarioSpec("incast-backpressure", seed=1)
    with pytest.raises(ValueError, match="shards"):
        run_scenario_sharded(
            spec,
            RunConfig(shards=2, obs=ObsConfig(trace=True, sink="ring", sim_events=True)),
        )


def test_zero_fault_plan_matches_fault_free_run():
    """An all-zero FaultPlan must not perturb the sharded fast path."""
    spec = ScenarioSpec("incast-backpressure", seed=1)
    obs = ObsConfig(trace=True, sink="ring")
    plain = run_scenario_sharded(spec, RunConfig(obs=obs, shards=2))
    zeroed = run_scenario_sharded(
        spec, RunConfig(obs=obs, shards=2, faults=FaultPlan(seed=99))
    )
    assert _describe(zeroed) == _describe(plain)
    assert zeroed.fault_incidents == [] and zeroed.fault_counters == {}
    assert _canonical_trace(zeroed) == _canonical_trace(plain)


def test_sharded_perf_accounting_present():
    spec = ScenarioSpec("incast-backpressure", seed=1)
    result = run_scenario_sharded(spec, RunConfig(shards=2))
    stats = result.perf
    assert stats.shards == 2
    assert stats.barrier_epochs > 0
    assert stats.aggregate_events_per_sec > 0
