"""Topology builder tests: sizes, wiring and addressing."""

import pytest

from repro.topology import (
    build_dumbbell,
    build_fat_tree,
    build_leaf_spine,
    build_line,
    build_ring,
)


class TestFatTree:
    def test_k4_has_20_switches(self, fat_tree):
        assert len(fat_tree.switches) == 20  # the paper's topology (§4.1)

    def test_k4_has_16_hosts(self, fat_tree):
        assert len(fat_tree.hosts) == 16

    def test_k4_link_count(self, fat_tree):
        # edge-agg: 4 pods * 2*2; agg-core: 4 pods * 2*2; hosts: 16
        assert len(fat_tree.links) == 16 + 16 + 16

    def test_core_count_scales(self):
        topo = build_fat_tree(k=6, hosts_per_edge=1)
        assert len([s for s in topo.switches if s.name.startswith("C")]) == 9

    def test_host_ip_convention(self, fat_tree):
        assert fat_tree.host_ip("H2_1_0") == "10.2.1.2"

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            build_fat_tree(k=3)

    def test_every_edge_connects_all_pod_aggs(self, fat_tree):
        neighbors = {ref.node for _, ref in fat_tree.neighbors("E1_0")}
        assert {"A1_0", "A1_1"} <= neighbors

    def test_agg_connects_to_core_group(self, fat_tree):
        neighbors = {ref.node for _, ref in fat_tree.neighbors("A0_1")}
        assert {"C2", "C3"} <= neighbors


class TestLeafSpine:
    def test_counts(self):
        topo = build_leaf_spine(leaves=4, spines=2, hosts_per_leaf=3)
        assert len(topo.switches) == 6
        assert len(topo.hosts) == 12
        assert len(topo.links) == 4 * 2 + 12

    def test_validation(self):
        with pytest.raises(ValueError):
            build_leaf_spine(leaves=0)


class TestDumbbell:
    def test_shape(self, dumbbell):
        assert len(dumbbell.switches) == 2
        assert len(dumbbell.hosts) == 4

    def test_sides_connected(self, dumbbell):
        assert dumbbell.attachment_of("HL0").node == "SW1"
        assert dumbbell.attachment_of("HR0").node == "SW2"


class TestLine:
    def test_chain_wiring(self, line3):
        assert {r.node for _, r in line3.neighbors("SW2")} >= {"SW1", "SW3"}

    def test_host_count(self, line3):
        assert len(line3.hosts) == 6

    def test_single_switch(self):
        topo = build_line(num_switches=1, hosts_per_switch=2)
        assert len(topo.switches) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            build_line(num_switches=0)


class TestRing:
    def test_ring_closes(self, ring4):
        assert {r.node for _, r in ring4.neighbors("SW1")} >= {"SW2", "SW4"}

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            build_ring(num_switches=2)

    def test_ring_link_count(self, ring4):
        assert len(ring4.links) == 4 + 8  # ring links + host links
