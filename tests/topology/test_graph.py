"""Topology graph model tests."""

import pytest

from repro.topology import NodeKind, PortRef, Topology, TopologyError
from repro.units import gbps, usec


def make_pair():
    topo = Topology("pair")
    topo.add_switch("S1")
    topo.add_switch("S2")
    link = topo.add_link("S1", "S2", gbps(100), usec(2))
    return topo, link


class TestPortRef:
    def test_str_format_matches_paper(self):
        assert str(PortRef("SW1", 1)) == "SW1.P1"

    def test_ordering_and_hash(self):
        a, b = PortRef("A", 1), PortRef("A", 2)
        assert a < b
        assert len({a, b, PortRef("A", 1)}) == 2


class TestNodes:
    def test_switch_kind(self):
        topo = Topology()
        node = topo.add_switch("S")
        assert node.is_switch and not node.is_host
        assert node.kind is NodeKind.SWITCH

    def test_host_gets_default_ip(self):
        topo = Topology()
        topo.add_host("H")
        assert topo.host_ip("H") == "10.0.0.1"

    def test_host_explicit_ip(self):
        topo = Topology()
        topo.add_host("H", ip="10.9.9.9")
        assert topo.host_ip("H") == "10.9.9.9"
        assert topo.host_of_ip("10.9.9.9") == "H"

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_switch("X")
        with pytest.raises(TopologyError):
            topo.add_host("X")

    def test_duplicate_ip_rejected(self):
        topo = Topology()
        topo.add_host("A", ip="10.0.0.1")
        with pytest.raises(TopologyError):
            topo.add_host("B", ip="10.0.0.1")

    def test_unknown_node_lookup(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.node("nope")

    def test_unknown_ip_lookup(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.host_of_ip("1.2.3.4")


class TestLinks:
    def test_auto_port_allocation(self):
        topo, link = make_pair()
        assert link.a == PortRef("S1", 1)
        assert link.b == PortRef("S2", 1)

    def test_explicit_ports(self):
        topo = Topology()
        topo.add_switch("S1")
        topo.add_switch("S2")
        link = topo.add_link("S1", "S2", gbps(100), usec(2), a_port=7, b_port=9)
        assert link.a.port == 7 and link.b.port == 9

    def test_port_reuse_rejected(self):
        topo, _ = make_pair()
        with pytest.raises(TopologyError):
            topo.add_link("S1", "S2", gbps(100), usec(2), a_port=1)

    def test_peer_port(self):
        topo, link = make_pair()
        assert topo.peer_port(link.a) == link.b
        assert topo.peer_port(link.b) == link.a

    def test_other_end_rejects_foreign_port(self):
        topo, link = make_pair()
        with pytest.raises(ValueError):
            link.other_end(PortRef("S9", 1))

    def test_link_at_missing(self):
        topo, _ = make_pair()
        with pytest.raises(TopologyError):
            topo.link_at(PortRef("S1", 99))

    def test_has_link_at(self):
        topo, link = make_pair()
        assert topo.has_link_at(link.a)
        assert not topo.has_link_at(PortRef("S1", 42))

    def test_neighbors(self):
        topo, link = make_pair()
        neighbors = dict(topo.neighbors("S1"))
        assert neighbors == {1: PortRef("S2", 1)}


class TestHostAttachment:
    def test_host_port_and_attachment(self):
        topo = Topology()
        topo.add_switch("S")
        topo.add_host("H")
        topo.add_link("H", "S", gbps(100), usec(1))
        assert topo.host_port("H") == PortRef("H", 1)
        assert topo.attachment_of("H") == PortRef("S", 1)

    def test_host_port_rejects_switch(self):
        topo, _ = make_pair()
        with pytest.raises(TopologyError):
            topo.host_port("S1")

    def test_unconnected_host_rejected(self):
        topo = Topology()
        topo.add_host("H")
        with pytest.raises(TopologyError):
            topo.host_port("H")


class TestAccessors:
    def test_switches_and_hosts_lists(self):
        topo = Topology()
        topo.add_switch("S")
        topo.add_host("H")
        assert [n.name for n in topo.switches] == ["S"]
        assert [n.name for n in topo.hosts] == ["H"]

    def test_str_summary(self, fat_tree):
        text = str(fat_tree)
        assert "20 switches" in text
        assert "16 hosts" in text
