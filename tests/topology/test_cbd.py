"""CBD static analysis tests: deadlock-freedom checking on routing state."""

import pytest

from repro.topology import (
    RoutingTable,
    build_fat_tree,
    build_line,
    build_ring,
    buffer_dependency_graph,
    check_deadlock_free,
    find_cbd_cycles,
    has_cbd,
    make_ring_cbd_routes,
)


def ring_with_cbd():
    topo = build_ring(num_switches=4, hosts_per_switch=2)
    routing = RoutingTable(topo)
    ring = ["SW1", "SW2", "SW3", "SW4"]
    dst_ips = {
        sw: [topo.host_ip(f"H{i + 1}_{j}") for j in range(2)]
        for i, sw in enumerate(ring)
    }
    make_ring_cbd_routes(routing, ring, dst_ips)
    return topo, routing


class TestDeadlockFreedom:
    def test_fat_tree_shortest_paths_are_deadlock_free(self):
        """Up-down routing on a Clos fabric can never deadlock."""
        topo = build_fat_tree(k=4)
        assert not has_cbd(topo, RoutingTable(topo))

    def test_line_topology_deadlock_free(self):
        topo = build_line(num_switches=4, hosts_per_switch=2)
        assert not has_cbd(topo, RoutingTable(topo))

    def test_ring_topology_inherently_cbd_prone(self):
        """Even shortest-path ECMP on a 4-ring admits a CBD: destinations
        two hops away are reachable both ways, and the union of equal-cost
        choices closes a dependency cycle.  (This is why rings need careful
        routing restrictions in lossless networks.)"""
        topo = build_ring(num_switches=4, hosts_per_switch=2)
        assert has_cbd(topo, RoutingTable(topo))

    def test_clockwise_misconfiguration_creates_cbd(self):
        topo, routing = ring_with_cbd()
        cycles = check_deadlock_free(topo, routing)
        assert cycles, "forced clockwise routing must create a CBD"
        ring_cycle = max(cycles, key=len)
        assert {p.node for p in ring_cycle} == {"SW1", "SW2", "SW3", "SW4"}

    def test_cbd_matches_runtime_deadlock_loop(self):
        """The statically predicted cycle is the loop Hawkeye later finds."""
        from repro.workloads import in_loop_deadlock_scenario

        scenario = in_loop_deadlock_scenario(seed=1)
        net = scenario.network
        cycles = check_deadlock_free(net.topology, net.routing)
        predicted = {frozenset(p for p in c) for c in cycles}
        truth_loop = frozenset(scenario.truth.loop_ports)
        assert truth_loop in predicted


class TestDependencyGraph:
    def test_dependencies_point_downstream(self):
        topo, routing = ring_with_cbd()
        deps = buffer_dependency_graph(topo, routing)
        for src, dsts in deps.items():
            assert topo.node(src.node).is_switch
            for dst in dsts:
                # The source egress feeds the switch owning the dst egress.
                assert topo.peer_port(src).node == dst.node

    def test_host_ports_are_terminal(self):
        topo, routing = ring_with_cbd()
        deps = buffer_dependency_graph(topo, routing)
        for src, dsts in deps.items():
            for dst in dsts:
                peer = topo.peer_port(dst)
                # Host-facing egress ports may appear as targets but never
                # as dependency sources.
                if topo.node(peer.node).is_host:
                    assert dst not in deps or not deps[dst]

    def test_empty_graph_no_cycles(self):
        assert find_cbd_cycles({}) == []
