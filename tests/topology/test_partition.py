"""Partitioner property tests: balance, no lost links, lookahead.

The sharded runner's correctness argument leans on three invariants of
:func:`repro.topology.partition_topology`:

- every node lands in exactly one shard and every link is either fully
  intra-shard or in the cut set (nothing is lost),
- hosts are never separated from their ToR (host links are never cut), and
- the conservative-lookahead horizon equals the minimum propagation delay
  over the cut links.

These are checked as properties across the fat-tree family K in
{4, 6, 8, 16} and across the other builders.
"""

import pytest

from repro.topology import (
    build_dumbbell,
    build_fat_tree,
    build_leaf_spine,
    build_ring,
    partition_topology,
)

FAT_TREE_KS = [4, 6, 8, 16]


def _check_plan(topo, plan):
    """Shared invariants: full coverage, consistent cut set, lookahead."""
    # Every node assigned to exactly one valid shard.
    assert set(plan.assignment) == {n.name for n in topo.nodes}
    assert all(0 <= sid < plan.shards for sid in plan.assignment.values())
    # Every link is intra-shard or a cut link; no link is both or neither.
    cut = set()
    for link in plan.cut_links:
        key = (link.a, link.b)
        assert key not in cut
        cut.add(key)
    for link in topo.links:
        same = plan.assignment[link.a.node] == plan.assignment[link.b.node]
        assert same != ((link.a, link.b) in cut)
    assert len(cut) == len(plan.cut_links)
    # Host links are never cut: a host shares its ToR's shard.
    for host in topo.hosts:
        tor = topo.attachment_of(host.name).node
        assert plan.assignment[host.name] == plan.assignment[tor]
    # Cut-edge lookahead is the minimum boundary link latency.
    if plan.cut_links:
        assert plan.lookahead_ns == min(l.delay_ns for l in plan.cut_links)
        assert plan.lookahead_ns > 0


class TestFatTreePartition:
    @pytest.mark.parametrize("k", FAT_TREE_KS)
    def test_full_shard_request_is_balanced(self, k):
        """K pods onto K shards: one pod per shard, core spread round-robin."""
        topo = build_fat_tree(k=k)
        plan = partition_topology(topo, k)
        assert plan.shards == k
        assert plan.requested_shards == k
        _check_plan(topo, plan)
        sizes = plan.shard_sizes()
        # Each shard holds one pod (k edge + k agg halves + hosts) plus an
        # even split of the (k/2)^2 cores: sizes differ by at most one.
        assert max(sizes) - min(sizes) <= 1
        # Only agg<->core links are cut on a fat-tree.
        for link in plan.cut_links:
            ends = {link.a.node[0], link.b.node[0]}
            assert ends == {"A", "C"}

    @pytest.mark.parametrize("k", FAT_TREE_KS)
    def test_partial_shard_request_loses_nothing(self, k):
        """Packing K pods onto fewer shards still covers every link."""
        shards = max(2, k // 2)
        topo = build_fat_tree(k=k)
        plan = partition_topology(topo, shards)
        assert plan.shards == shards
        _check_plan(topo, plan)
        # Largest-first greedy packing of equal-sized pods stays balanced
        # to within one pod-group of nodes.
        pod_nodes = len(plan.groups[0])
        sizes = plan.shard_sizes()
        assert max(sizes) - min(sizes) <= pod_nodes

    @pytest.mark.parametrize("k", FAT_TREE_KS)
    def test_lookahead_matches_min_cut_delay(self, k):
        topo = build_fat_tree(k=k)
        plan = partition_topology(topo, k)
        cut_delays = sorted(l.delay_ns for l in plan.cut_links)
        assert plan.lookahead_ns == cut_delays[0]

    def test_oversized_request_clamps_to_pod_count(self):
        topo = build_fat_tree(k=4)
        plan = partition_topology(topo, 64)
        assert plan.requested_shards == 64
        assert plan.shards == 4  # one atomic group (pod) per shard at most
        _check_plan(topo, plan)

    def test_plan_is_deterministic(self):
        topo = build_fat_tree(k=8)
        a = partition_topology(topo, 4)
        b = partition_topology(build_fat_tree(k=8), 4)
        assert a.assignment == b.assignment
        assert a.cut_links == b.cut_links
        assert a.lookahead_ns == b.lookahead_ns


class TestOtherTopologies:
    def test_leaf_spine_groups_by_tor(self):
        topo = build_leaf_spine(leaves=4, spines=2, hosts_per_leaf=2)
        plan = partition_topology(topo, 2)
        assert plan.shards == 2
        _check_plan(topo, plan)

    def test_ring_partitions_cleanly(self):
        topo = build_ring(num_switches=4, hosts_per_switch=2)
        plan = partition_topology(topo, 2)
        assert plan.shards == 2
        _check_plan(topo, plan)

    def test_dumbbell_two_shards(self):
        topo = build_dumbbell(hosts_per_side=3)
        plan = partition_topology(topo, 2)
        assert plan.shards == 2
        _check_plan(topo, plan)

    def test_single_shard_has_no_cut(self):
        topo = build_fat_tree(k=4)
        plan = partition_topology(topo, 1)
        assert plan.shards == 1
        assert plan.cut_links == ()
        _check_plan(topo, plan)

    def test_nonpositive_request_rejected(self):
        with pytest.raises(ValueError):
            partition_topology(build_fat_tree(k=4), 0)
