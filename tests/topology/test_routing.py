"""Routing tests: ECMP correctness, determinism, overrides, CBD creation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    PortRef,
    RoutingError,
    RoutingTable,
    build_fat_tree,
    build_line,
    build_ring,
    make_ring_cbd_routes,
)


@pytest.fixture
def ft_routing(fat_tree):
    return RoutingTable(fat_tree)


class TestShortestPaths:
    def test_intra_edge_path_is_one_switch(self, fat_tree, ft_routing):
        path = ft_routing.switch_path("H0_0_0", fat_tree.host_ip("H0_0_1"), "k")
        assert path == ["E0_0"]

    def test_intra_pod_path_is_three_switches(self, fat_tree, ft_routing):
        path = ft_routing.switch_path("H0_0_0", fat_tree.host_ip("H0_1_0"), "k")
        assert len(path) == 3
        assert path[0] == "E0_0" and path[-1] == "E0_1"
        assert path[1].startswith("A0_")

    def test_inter_pod_path_is_five_switches(self, fat_tree, ft_routing):
        path = ft_routing.switch_path("H0_0_0", fat_tree.host_ip("H3_1_1"), "k")
        assert len(path) == 5
        assert path[2].startswith("C")

    def test_flow_path_starts_at_host_port(self, fat_tree, ft_routing):
        path = ft_routing.flow_path("H0_0_0", fat_tree.host_ip("H3_1_1"), "k")
        assert path[0] == fat_tree.host_port("H0_0_0")

    def test_flow_path_ends_at_destination_tor(self, fat_tree, ft_routing):
        dst_ip = fat_tree.host_ip("H3_1_1")
        path = ft_routing.flow_path("H0_0_0", dst_ip, "k")
        assert path[-1] == fat_tree.attachment_of("H3_1_1")

    def test_no_route_raises(self, fat_tree, ft_routing):
        with pytest.raises(RoutingError):
            ft_routing.ecmp_ports("E0_0", "1.2.3.4")


class TestEcmp:
    def test_ecmp_set_has_two_uplinks(self, fat_tree, ft_routing):
        ports = ft_routing.ecmp_ports("E0_0", fat_tree.host_ip("H3_0_0"))
        assert len(ports) == 2  # two aggregation switches per pod

    def test_selection_is_deterministic(self, fat_tree, ft_routing):
        dst = fat_tree.host_ip("H3_0_0")
        picks = {ft_routing.select_port("E0_0", dst, "flowX") for _ in range(10)}
        assert len(picks) == 1

    def test_selection_spreads_flows(self, fat_tree, ft_routing):
        dst = fat_tree.host_ip("H3_0_0")
        picks = {
            ft_routing.select_port("E0_0", dst, f"flow{i}") for i in range(64)
        }
        assert len(picks) == 2  # both uplinks get used across many flows

    def test_paths_consistent_between_calls(self, fat_tree, ft_routing):
        dst = fat_tree.host_ip("H2_1_1")
        p1 = ft_routing.flow_path("H0_0_0", dst, ("a", 1))
        p2 = ft_routing.flow_path("H0_0_0", dst, ("a", 1))
        assert p1 == p2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_any_flow_key_routes_successfully(self, key):
        topo = build_fat_tree(k=4)
        routing = RoutingTable(topo)
        path = routing.switch_path("H0_0_0", topo.host_ip("H3_1_1"), key)
        assert 1 <= len(path) <= 5


class TestStaticOverrides:
    def test_override_wins(self, line3):
        routing = RoutingTable(line3)
        dst = line3.host_ip("H3_0")
        natural = routing.ecmp_ports("SW1", dst)
        # Force toward a host port instead (nonsensical but allowed).
        other = next(p for p, r in line3.neighbors("SW1") if r.node == "H1_0")
        routing.set_static_route("SW1", dst, other)
        assert routing.ecmp_ports("SW1", dst) == [other]
        routing.clear_static_route("SW1", dst)
        assert routing.ecmp_ports("SW1", dst) == natural

    def test_override_requires_switch(self, line3):
        routing = RoutingTable(line3)
        with pytest.raises(RoutingError):
            routing.set_static_route("H1_0", "10.3.0.2", 1)

    def test_override_requires_existing_port(self, line3):
        routing = RoutingTable(line3)
        with pytest.raises(RoutingError):
            routing.set_static_route("SW1", "10.3.0.2", 99)

    def test_loop_detection_raises(self, line3):
        routing = RoutingTable(line3)
        dst = line3.host_ip("H3_0")
        # SW1 -> SW2 and SW2 -> SW1 is a routing loop.
        p12 = next(p for p, r in line3.neighbors("SW1") if r.node == "SW2")
        p21 = next(p for p, r in line3.neighbors("SW2") if r.node == "SW1")
        routing.set_static_route("SW1", dst, p12)
        routing.set_static_route("SW2", dst, p21)
        with pytest.raises(RoutingError):
            routing.flow_path("H1_0", dst, "k")


class TestRingCbd:
    def test_clockwise_routes(self, ring4):
        routing = RoutingTable(ring4)
        ring = ["SW1", "SW2", "SW3", "SW4"]
        dst_ips = {
            sw: [ring4.host_ip(f"H{i + 1}_{j}") for j in range(2)]
            for i, sw in enumerate(ring)
        }
        make_ring_cbd_routes(routing, ring, dst_ips)
        # H1 -> H3 must go the clockwise way: SW1, SW2, SW3.
        path = routing.switch_path("H1_0", ring4.host_ip("H3_0"), "k")
        assert path == ["SW1", "SW2", "SW3"]
        # ... even though counterclockwise would be equally short.
        back = routing.switch_path("H3_0", ring4.host_ip("H1_0"), "k")
        assert back == ["SW3", "SW4", "SW1"]

    def test_cbd_requires_three_switches(self, ring4):
        routing = RoutingTable(ring4)
        with pytest.raises(RoutingError):
            make_ring_cbd_routes(routing, ["SW1", "SW2"], {})

    def test_cbd_requires_adjacent_ring(self, ring4):
        routing = RoutingTable(ring4)
        with pytest.raises(RoutingError):
            make_ring_cbd_routes(
                routing, ["SW1", "SW3", "SW2", "SW4"], {}
            )  # SW1 has no direct link to SW3


class TestPathProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
    def test_paths_are_physically_connected(self, pod_a, pod_b):
        topo = build_fat_tree(k=4)
        routing = RoutingTable(topo)
        src, dst = f"H{pod_a}_0_0", f"H{pod_b}_1_1"
        if src == dst:
            return
        path = routing.flow_path(src, topo.host_ip(dst), "k")
        # Each egress port's peer must be the node owning the next egress.
        current = topo.peer_port(path[0]).node
        for ref in path[1:]:
            assert ref.node == current
            current = topo.peer_port(ref).node
        assert current == dst
