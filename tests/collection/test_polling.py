"""Polling engine tests: victim-path forwarding, flag upgrade, causality
multicast, dedup, partial deployment."""

import pytest

from repro.collection import PollingConfig, PollingEngine, TelemetryCollector
from repro.sim import Network, PollingFlag
from repro.telemetry import HawkeyeDeployment
from repro.topology import build_line
from repro.units import KB, msec, usec


def make_line_net(hosts=4):
    topo = build_line(num_switches=3, hosts_per_switch=hosts)
    return topo, Network(topo)


def deploy(net, polling_config=None, switches=None):
    dep = HawkeyeDeployment(net, switches=switches)
    collector = TelemetryCollector(dep)
    engine = PollingEngine(net, dep, polling_config)
    engine.add_mirror_listener(collector.on_polling_mirror)
    return dep, collector, engine


class TestVictimPathForwarding:
    def test_polling_walks_victim_path(self):
        topo, net = make_line_net()
        dep, collector, engine = deploy(net)
        flow = net.make_flow("H1_0", "H3_0", 20 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(200))
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        collector.flush_pending(net.sim.now)
        assert collector.collected_switches() == ["SW1", "SW2", "SW3"]

    def test_no_pfc_no_causality_branching(self):
        topo, net = make_line_net()
        dep, collector, engine = deploy(net)
        flow = net.make_flow("H1_0", "H3_0", 20 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(200))
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        # Unloaded network: polling forwarded once per victim-path hop only
        # (SW3's egress faces the destination host, so nothing leaves SW3).
        assert engine.polling_packets_forwarded == 2

    def test_flag_upgraded_when_victim_paused(self):
        topo, net = make_line_net()
        dep, collector, engine = deploy(net)
        # Oversubscribe SW3's host port so PFC pauses the victim upstream.
        victim = net.make_flow("H1_0", "H3_0", 400 * KB, usec(1), src_port=1)
        net.start_flow(victim)
        for i, src in enumerate(["H2_0", "H2_1", "H3_1", "H3_2"]):
            net.start_flow(net.make_flow(src, "H3_0", 400 * KB, usec(1), src_port=10 + i))
        net.run(usec(100))
        net.hosts["H1_0"].inject_polling(victim.key, PollingFlag.VICTIM_PATH)
        before = net.switch("SW2").stats.polling_seen
        net.run(net.sim.now + usec(100))
        assert net.switch("SW2").stats.polling_seen > before

    def test_dedup_drops_duplicate_polling(self):
        topo, net = make_line_net()
        dep, collector, engine = deploy(net)
        flow = net.make_flow("H1_0", "H3_0", 20 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(200))
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        assert engine.polling_packets_suppressed > 0
        assert engine.polling_packets_forwarded == 2  # second copy went nowhere

    def test_dropped_counter_is_deprecated_alias(self):
        import warnings

        from repro.collection.polling import PollingEngine

        topo, net = make_line_net()
        dep, collector, engine = deploy(net)
        flow = net.make_flow("H1_0", "H3_0", 20 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(200))
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        # The alias still answers, but warns exactly once per process.
        PollingEngine._dropped_alias_warned = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                value = engine.polling_packets_dropped
                value_again = engine.polling_packets_dropped
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1
            assert "polling_packets_suppressed" in str(deprecations[0].message)
        finally:
            PollingEngine._dropped_alias_warned = True
        assert value == value_again == engine.polling_packets_suppressed
        assert value > 0

    def test_reset_victim_reopens_dedup(self):
        topo, net = make_line_net()
        dep, collector, engine = deploy(net)
        flow = net.make_flow("H1_0", "H3_0", 20 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(200))
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        assert engine.polling_packets_forwarded == 2
        # Within the dedup interval a plain re-injection goes nowhere, but a
        # reset (a retransmission's new trace generation) re-walks the path.
        engine.reset_victim(flow.key)
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        assert engine.polling_packets_forwarded == 4
        assert engine.polling_packets_suppressed == 0

    def test_trace_pfc_disabled_never_upgrades(self):
        topo, net = make_line_net()
        dep, collector, engine = deploy(net, PollingConfig(trace_pfc=False))
        victim = net.make_flow("H1_0", "H3_0", 400 * KB, usec(1), src_port=1)
        net.start_flow(victim)
        for i, src in enumerate(["H2_0", "H2_1", "H3_1", "H3_2"]):
            net.start_flow(net.make_flow(src, "H3_0", 400 * KB, usec(1), src_port=10 + i))
        net.run(msec(1))
        net.hosts["H1_0"].inject_polling(victim.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        collector.flush_pending(net.sim.now)
        # Victim-path only: exactly the three path switches, even under PFC.
        assert set(collector.collected_switches()) <= {"SW1", "SW2", "SW3"}


class TestPartialDeployment:
    def test_trace_stops_at_non_hawkeye_switch(self):
        topo, net = make_line_net()
        dep, collector, engine = deploy(net, switches=["SW1", "SW3"])
        flow = net.make_flow("H1_0", "H3_0", 20 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(200))
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        collector.flush_pending(net.sim.now)
        # SW2 has no polling handler: it drops the packet, so SW3 is never
        # reached (§5's partial-deployment limitation).
        assert collector.collected_switches() == ["SW1"]


class TestMirrorListeners:
    def test_every_polling_packet_mirrored(self):
        topo, net = make_line_net()
        dep = HawkeyeDeployment(net)
        mirrors = []
        engine = PollingEngine(net, dep)
        engine.add_mirror_listener(lambda sw, pkt, now: mirrors.append(sw))
        flow = net.make_flow("H1_0", "H3_0", 20 * KB, usec(1))
        net.start_flow(flow)
        net.run(usec(200))
        net.hosts["H1_0"].inject_polling(flow.key, PollingFlag.VICTIM_PATH)
        net.run(net.sim.now + msec(1))
        assert mirrors == ["SW1", "SW2", "SW3"]
