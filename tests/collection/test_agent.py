"""Detection agent tests: RTT triggering, stall detection, cooldown."""

import pytest

from repro.collection import AgentConfig, DetectionAgent
from repro.sim import DATA_PRIORITY, Network, Packet
from repro.topology import build_dumbbell
from repro.units import KB, msec, usec


class TestRttTrigger:
    def test_no_trigger_when_unloaded(self, tiny_net):
        agent = DetectionAgent(tiny_net, AgentConfig(threshold_multiplier=3.0))
        tiny_net.start_flow(tiny_net.make_flow("A", "B", 50 * KB, usec(1)))
        tiny_net.run(msec(1))
        assert agent.triggers == []

    def test_trigger_on_congested_flow(self):
        net = Network(build_dumbbell(hosts_per_side=4))
        agent = DetectionAgent(net, AgentConfig(threshold_multiplier=3.0))
        victim = net.make_flow("HL0", "HR0", 500 * KB, usec(1), src_port=1)
        net.start_flow(victim)
        for j in range(1, 4):
            net.start_flow(net.make_flow(f"HL{j}", "HR0", 500 * KB, usec(1), src_port=10 + j))
        net.run(msec(3))
        assert any(t.victim == victim.key for t in agent.triggers)

    def test_trigger_event_fields(self):
        net = Network(build_dumbbell(hosts_per_side=4))
        agent = DetectionAgent(net, AgentConfig(threshold_multiplier=2.0))
        for j in range(4):
            net.start_flow(net.make_flow(f"HL{j}", "HR0", 500 * KB, usec(1), src_port=10 + j))
        net.run(msec(3))
        assert agent.triggers
        t = agent.triggers[0]
        assert t.rtt_ns > t.base_rtt_ns * 2
        assert t.time_ns > 0

    def test_cooldown_suppresses_repeats(self):
        net = Network(build_dumbbell(hosts_per_side=4))
        agent = DetectionAgent(
            net, AgentConfig(threshold_multiplier=2.0, cooldown_ns=msec(100))
        )
        victim = net.make_flow("HL0", "HR0", 1000 * KB, usec(1), src_port=1)
        net.start_flow(victim)
        for j in range(1, 4):
            net.start_flow(net.make_flow(f"HL{j}", "HR0", 1000 * KB, usec(1), src_port=10 + j))
        net.run(msec(5))
        mine = [t for t in agent.triggers if t.victim == victim.key]
        assert len(mine) == 1

    def test_threshold_sensitivity(self):
        """A lax threshold must trigger no more often than a strict one."""

        def trigger_count(multiplier):
            net = Network(build_dumbbell(hosts_per_side=4))
            agent = DetectionAgent(net, AgentConfig(threshold_multiplier=multiplier))
            for j in range(4):
                net.start_flow(
                    net.make_flow(f"HL{j}", "HR0", 400 * KB, usec(1), src_port=10 + j)
                )
            net.run(msec(3))
            return len(agent.triggers)

        assert trigger_count(8.0) <= trigger_count(2.0)

    def test_listener_invoked(self, tiny_net):
        net = tiny_net
        agent = DetectionAgent(net, AgentConfig(threshold_multiplier=0.0001))
        seen = []
        agent.add_trigger_listener(seen.append)
        net.start_flow(net.make_flow("A", "B", 10 * KB, usec(1)))
        net.run(msec(1))
        assert seen  # absurdly low threshold triggers on the first sample

    def test_polling_packet_injected_on_trigger(self, tiny_net):
        net = tiny_net
        DetectionAgent(net, AgentConfig(threshold_multiplier=0.0001))
        net.start_flow(net.make_flow("A", "B", 10 * KB, usec(1)))
        net.run(msec(1))
        assert net.switch("SW").stats.polling_seen > 0


class TestStallDetection:
    def test_fully_blocked_flow_triggers(self, tiny_net):
        net = tiny_net
        agent = DetectionAgent(
            net,
            AgentConfig(threshold_multiplier=3.0, stall_timeout_ns=usec(300)),
        )
        # Freeze the path before the flow starts: zero ACKs ever arrive.
        net.hosts["B"].start_pfc_injection(msec(10))
        victim = net.make_flow("A", "B", 100 * KB, usec(50))
        net.start_flow(victim)
        net.run(msec(3))
        assert any(t.victim == victim.key for t in agent.triggers)

    def test_deadlocked_flow_triggers_once_per_cooldown(self, tiny_net):
        """A permanently stalled flow re-triggers exactly on the cooldown
        cadence: gaps never undercut the window, and the total count is
        bounded by the run length divided by the cooldown."""
        net = tiny_net
        cooldown = usec(500)
        duration = msec(3)
        agent = DetectionAgent(
            net,
            AgentConfig(
                threshold_multiplier=50.0,  # RTT path silent: stalls only
                stall_timeout_ns=usec(300),
                cooldown_ns=cooldown,
            ),
        )
        net.hosts["B"].start_pfc_injection(msec(10))
        victim = net.make_flow("A", "B", 100 * KB, usec(50))
        net.start_flow(victim)
        net.run(duration)
        times = [t.time_ns for t in agent.triggers if t.victim == victim.key]
        assert len(times) >= 2  # the stall persists across several windows
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= cooldown for gap in gaps)
        assert len(times) <= duration // cooldown + 1

    def test_healthy_flow_does_not_stall_trigger(self, tiny_net):
        agent = DetectionAgent(
            tiny_net,
            AgentConfig(threshold_multiplier=50.0, stall_timeout_ns=usec(300)),
        )
        tiny_net.start_flow(tiny_net.make_flow("A", "B", 100 * KB, usec(1)))
        tiny_net.run(msec(3))
        assert agent.triggers == []

    def test_completed_flow_never_stall_triggers(self, tiny_net):
        agent = DetectionAgent(
            tiny_net, AgentConfig(threshold_multiplier=50.0, stall_timeout_ns=usec(100))
        )
        flow = tiny_net.make_flow("A", "B", 10 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(msec(5))
        assert flow.completed
        assert agent.triggers == []


class TestBaseRtt:
    def test_base_rtt_cached(self, tiny_net):
        agent = DetectionAgent(tiny_net)
        flow = tiny_net.make_flow("A", "B", 10 * KB, 0)
        assert agent.base_rtt(flow) == agent.base_rtt(flow)
        assert agent.base_rtt(flow) > 0
