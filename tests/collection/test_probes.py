"""Probe mesh tests: periodic probing and anomaly surfacing (§5)."""

import pytest

from repro.collection import (
    AgentConfig,
    DetectionAgent,
    ProbeMesh,
    ProbeMeshConfig,
)
from repro.sim import Network
from repro.topology import build_line
from repro.units import msec, usec


class TestProbeMesh:
    def test_probes_launched_on_schedule(self, tiny_net):
        mesh = ProbeMesh(tiny_net, ProbeMeshConfig(interval_ns=usec(100), probes_per_round=2))
        mesh.start()
        tiny_net.run(usec(1000))
        # ~10 rounds x 2 probes (first round at t=0).
        assert len(mesh.probes) >= 18

    def test_probes_complete_on_healthy_network(self, tiny_net):
        mesh = ProbeMesh(tiny_net, ProbeMeshConfig(interval_ns=usec(200)))
        mesh.start()
        tiny_net.run(msec(1))
        tiny_net.run(msec(2))  # drain
        assert mesh.coverage() > 0.9

    def test_stop_halts_probing(self, tiny_net):
        mesh = ProbeMesh(tiny_net, ProbeMeshConfig(interval_ns=usec(100)))
        mesh.start()
        tiny_net.run(usec(300))
        count = len(mesh.probes)
        mesh.stop()
        tiny_net.run(msec(2))
        assert len(mesh.probes) == count

    def test_start_idempotent(self, tiny_net):
        mesh = ProbeMesh(tiny_net, ProbeMeshConfig(interval_ns=usec(100), probes_per_round=1))
        mesh.start()
        mesh.start()
        tiny_net.run(usec(250))
        assert len(mesh.probes) <= 4  # not doubled

    def test_requires_two_hosts(self):
        from repro.topology import Topology
        from repro.units import gbps

        topo = Topology()
        topo.add_switch("S")
        topo.add_host("A")
        topo.add_link("A", "S", gbps(100), usec(1))
        net = Network(topo)
        with pytest.raises(ValueError):
            ProbeMesh(net)

    def test_probes_surface_frozen_paths(self):
        """A PFC storm stalls probes toward the frozen region, and the
        standard agent turns the stalled probes into diagnosis triggers."""
        topo = build_line(num_switches=3, hosts_per_switch=2)
        net = Network(topo)
        agent = DetectionAgent(net, AgentConfig())
        mesh = ProbeMesh(net, ProbeMeshConfig(interval_ns=usec(200)))
        mesh.start()
        net.hosts["H3_0"].start_pfc_injection(msec(4))
        net.run(msec(3))
        stalled = mesh.stalled_probes()
        assert stalled, "probes into the frozen ToR must stall"
        stalled_keys = {p.key for p in stalled}
        assert any(t.victim in stalled_keys for t in agent.triggers)
