"""Controller-assisted collection tests: dedup, delayed reads, accounting."""

import pytest

from repro.collection import MTU_BYTES, TelemetryCollector
from repro.sim import Network, Packet, PollingFlag
from repro.telemetry import HawkeyeDeployment
from repro.units import KB, msec, usec


def polling_pkt(net, flow):
    return Packet.polling(flow.key, PollingFlag.VICTIM_PATH, net.sim.now)


class TestCollection:
    def test_collect_produces_report(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep)
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(100))
        report = collector.collect("SW", tiny_net.sim.now)
        assert report.switch == "SW"
        assert report.num_flow_entries() > 0

    def test_mirror_schedules_delayed_read(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, read_delay_ns=usec(50))
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(10))
        collector.on_polling_mirror("SW", polling_pkt(tiny_net, flow), tiny_net.sim.now)
        assert collector.reports == []  # not read yet
        tiny_net.run(usec(100))
        assert len(collector.reports) == 1
        assert collector.reports[0].collect_time >= usec(60)

    def test_dedup_interval_suppresses(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, dedup_interval_ns=msec(1), read_delay_ns=0)
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(50))
        pkt = polling_pkt(tiny_net, flow)
        collector.on_polling_mirror("SW", pkt, tiny_net.sim.now)
        collector.on_polling_mirror("SW", pkt, tiny_net.sim.now)
        assert collector.stats.collections == 1
        assert collector.stats.suppressed_collections == 1

    def test_collection_allowed_after_interval(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, dedup_interval_ns=usec(10), read_delay_ns=0)
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(50))
        collector.on_polling_mirror("SW", polling_pkt(tiny_net, flow), tiny_net.sim.now)
        tiny_net.run(usec(100))
        collector.on_polling_mirror("SW", polling_pkt(tiny_net, flow), tiny_net.sim.now)
        assert collector.stats.collections == 2

    def test_flush_pending(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, read_delay_ns=msec(100))
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(50))
        collector.on_polling_mirror("SW", polling_pkt(tiny_net, flow), tiny_net.sim.now)
        tiny_net.run(usec(100))  # far before the scheduled read
        collector.flush_pending(tiny_net.sim.now)
        assert len(collector.reports) == 1

    def test_collect_all(self, line3_net):
        dep = HawkeyeDeployment(line3_net)
        collector = TelemetryCollector(dep, read_delay_ns=0)
        collector.collect_all(0)
        assert collector.collected_switches() == ["SW1", "SW2", "SW3"]

    def test_reports_by_switch_keeps_freshest(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, dedup_interval_ns=0, read_delay_ns=0)
        collector.collect("SW", 10)
        collector.collect("SW", 20)
        assert collector.reports_by_switch()["SW"].collect_time == 20


class TestAccounting:
    def test_filtered_smaller_than_full_dump(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, read_delay_ns=0)
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(100))
        collector.collect("SW", tiny_net.sim.now)
        assert 0 < collector.stats.filtered_bytes < collector.stats.full_dump_bytes

    def test_cpu_packets_fewer_than_dataplane_packets(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, read_delay_ns=0)
        flow = tiny_net.make_flow("A", "B", 200 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(msec(1))
        collector.collect("SW", tiny_net.sim.now)
        # Fig 14(b): MTU batching beats PHV-limited data-plane generation.
        assert collector.stats.report_packets_cpu < collector.stats.report_packets_dataplane

    def test_report_packets_scale_with_mtu(self, tiny_net):
        dep = HawkeyeDeployment(tiny_net)
        collector = TelemetryCollector(dep, read_delay_ns=0)
        flow = tiny_net.make_flow("A", "B", 20 * KB, usec(1))
        tiny_net.start_flow(flow)
        tiny_net.run(usec(100))
        report = collector.collect("SW", tiny_net.sim.now)
        expected = max(1, -(-report.payload_bytes() // MTU_BYTES))
        assert collector.stats.report_packets_cpu == expected
