"""Shared fixtures: small fabrics and ready-made flows."""

import pytest

from repro.sim import Network, SimConfig
from repro.topology import (
    RoutingTable,
    Topology,
    build_dumbbell,
    build_fat_tree,
    build_line,
    build_ring,
)
from repro.units import gbps, usec


@pytest.fixture
def dumbbell():
    return build_dumbbell(hosts_per_side=2)


@pytest.fixture
def dumbbell_net(dumbbell):
    return Network(dumbbell)


@pytest.fixture
def line3():
    return build_line(num_switches=3, hosts_per_switch=2)


@pytest.fixture
def line3_net(line3):
    return Network(line3)


@pytest.fixture
def fat_tree():
    return build_fat_tree(k=4)


@pytest.fixture
def ring4():
    return build_ring(num_switches=4, hosts_per_switch=2)


@pytest.fixture
def tiny_topo():
    """Two hosts, one switch: the smallest routable fabric."""
    topo = Topology("tiny")
    topo.add_switch("SW")
    topo.add_host("A", ip="10.0.0.1")
    topo.add_host("B", ip="10.0.0.2")
    topo.add_link("A", "SW", gbps(100), usec(1))
    topo.add_link("B", "SW", gbps(100), usec(1))
    return topo


@pytest.fixture
def tiny_net(tiny_topo):
    return Network(tiny_topo)
