"""FaultPlan / RetryPolicy validation and semantics."""

import pytest

from repro.faults import FaultPlan, RetryPolicy, plan_or_none
from repro.units import usec


class TestFaultPlanValidation:
    @pytest.mark.parametrize("field", [
        "polling_loss_rate", "polling_corrupt_rate", "report_loss_rate",
        "report_truncate_rate", "report_delay_rate", "dma_failure_rate",
        "dma_stale_rate", "agent_restart_rate",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_out_of_range_rate_rejected(self, field, bad):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: bad})

    @pytest.mark.parametrize("field", [
        "report_delay_max_ns", "dma_stale_age_ns",
        "agent_restart_blackout_ns", "clock_skew_max_ns",
    ])
    def test_negative_duration_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: -1})

    def test_boundary_rates_accepted(self):
        FaultPlan(polling_loss_rate=0.0, report_loss_rate=1.0)


class TestFaultPlanSemantics:
    def test_default_plan_disabled(self):
        assert not FaultPlan().enabled

    def test_any_rate_enables(self):
        assert FaultPlan(dma_failure_rate=0.01).enabled

    def test_clock_skew_alone_enables(self):
        assert FaultPlan(clock_skew_max_ns=usec(1)).enabled

    def test_lossy_is_symmetric(self):
        plan = FaultPlan.lossy(0.25, seed=7)
        assert plan.polling_loss_rate == 0.25
        assert plan.report_loss_rate == 0.25
        assert plan.seed == 7

    def test_describe_names_active_faults(self):
        plan = FaultPlan(seed=3, report_loss_rate=0.5)
        text = plan.describe()
        assert "seed=3" in text
        assert "report_loss_rate=0.5" in text
        assert "dma_failure_rate" not in text

    def test_plan_or_none_normalizes(self):
        assert plan_or_none(None) is None
        assert plan_or_none(FaultPlan()) is None
        live = FaultPlan.lossy(0.1)
        assert plan_or_none(live) is live


class TestRetryPolicy:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"report_timeout_ns": 0},
        {"max_retries": -1},
        {"dma_retry_budget": -1},
        {"backoff_factor": 0.5},
        {"jitter_ns": -1},
        {"dma_retry_delay_ns": -1},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_is_exponential(self):
        retry = RetryPolicy(report_timeout_ns=usec(300), backoff_factor=2.0)
        assert retry.backoff_ns(1) == usec(300)
        assert retry.backoff_ns(2) == usec(600)
        assert retry.backoff_ns(3) == usec(1200)

    def test_backoff_factor_one_is_constant(self):
        retry = RetryPolicy(report_timeout_ns=usec(100), backoff_factor=1.0)
        assert retry.backoff_ns(1) == retry.backoff_ns(4) == usec(100)
