"""FaultInjector determinism: seeded streams, memoized skew, incident log."""

from repro.faults import FaultInjector, FaultPlan, make_injector
from repro.faults.injector import (
    DMA_FAIL,
    DMA_OK,
    DMA_STALE,
    REPORT_DELAYED,
    REPORT_LOST,
    REPORT_TRUNCATED,
    FaultIncident,
)
from repro.units import usec


class TestMakeInjector:
    def test_none_plan_gives_none(self):
        assert make_injector(None) is None

    def test_noop_plan_gives_none(self):
        assert make_injector(FaultPlan()) is None

    def test_live_plan_gives_injector(self):
        injector = make_injector(FaultPlan.lossy(0.1))
        assert isinstance(injector, FaultInjector)


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed=42, polling_loss_rate=0.3, dma_failure_rate=0.3)
        a, b = FaultInjector(plan), FaultInjector(plan)
        fates_a = [a.polling_fate(i, "SW1") for i in range(200)]
        fates_b = [b.polling_fate(i, "SW1") for i in range(200)]
        assert fates_a == fates_b
        assert a.incident_log() == b.incident_log()
        assert a.stats == b.stats

    def test_different_seed_different_decisions(self):
        mk = lambda s: FaultInjector(FaultPlan(seed=s, polling_loss_rate=0.5))
        a, b = mk(1), mk(2)
        assert (
            [a.polling_fate(i, "SW") for i in range(200)]
            != [b.polling_fate(i, "SW") for i in range(200)]
        )

    def test_categories_draw_independent_streams(self):
        """Consulting one category must not perturb another's sequence."""
        plan = FaultPlan(seed=5, polling_loss_rate=0.4, dma_failure_rate=0.4)
        pure = FaultInjector(plan)
        mixed = FaultInjector(plan)
        pure_fates = [pure.polling_fate(i, "SW") for i in range(100)]
        mixed_fates = []
        for i in range(100):
            mixed.dma_fate(i, "SW")  # interleaved extra draws
            mixed_fates.append(mixed.polling_fate(i, "SW"))
        assert pure_fates == mixed_fates


class TestFates:
    def test_certain_loss(self):
        injector = FaultInjector(FaultPlan(polling_loss_rate=1.0))
        assert not injector.polling_fate(0, "SW")
        assert injector.stats == {"polling_packet_lost": 1}

    def test_corruption_counted_separately(self):
        injector = FaultInjector(FaultPlan(polling_corrupt_rate=1.0))
        assert not injector.polling_fate(0, "SW")
        assert injector.stats == {"polling_packet_corrupted": 1}

    def test_dma_fates(self):
        assert FaultInjector(FaultPlan(dma_failure_rate=1.0)).dma_fate(0, "SW") == DMA_FAIL
        assert FaultInjector(FaultPlan(dma_stale_rate=1.0)).dma_fate(0, "SW") == DMA_STALE
        assert FaultInjector(FaultPlan.lossy(0.0, seed=1)).dma_fate(0, "SW") == DMA_OK

    def test_report_fates_and_delay_bounds(self):
        lost, _ = FaultInjector(FaultPlan(report_loss_rate=1.0)).report_fate(0, "SW")
        assert lost == REPORT_LOST
        trunc, _ = FaultInjector(FaultPlan(report_truncate_rate=1.0)).report_fate(0, "SW")
        assert trunc == REPORT_TRUNCATED
        injector = FaultInjector(
            FaultPlan(report_delay_rate=1.0, report_delay_max_ns=usec(100))
        )
        for _ in range(50):
            fate, delay = injector.report_fate(0, "SW")
            assert fate == REPORT_DELAYED
            assert 1 <= delay < usec(100)

    def test_retry_jitter_bounded(self):
        injector = FaultInjector(FaultPlan.lossy(0.1))
        assert injector.retry_jitter(0) == 0
        for _ in range(50):
            assert 0 <= injector.retry_jitter(usec(20)) < usec(20)


class TestClockSkew:
    def test_skew_memoized_and_bounded(self):
        injector = FaultInjector(FaultPlan(clock_skew_max_ns=usec(50)))
        first = injector.clock_skew_for("SW1")
        assert injector.clock_skew_for("SW1") == first
        assert -usec(50) <= first <= usec(50)

    def test_skew_keyed_by_name_not_order(self):
        plan = FaultPlan(seed=9, clock_skew_max_ns=usec(50))
        a, b = FaultInjector(plan), FaultInjector(plan)
        a.clock_skew_for("SW1")
        skew_a = a.clock_skew_for("SW2")
        skew_b = b.clock_skew_for("SW2")  # asked first here
        assert skew_a == skew_b

    def test_zero_max_no_skew(self):
        injector = FaultInjector(FaultPlan.lossy(0.1))
        assert injector.clock_skew_for("SW1") == 0


class TestIncidentLog:
    def test_incidents_in_order_with_detail(self):
        injector = FaultInjector(FaultPlan(polling_loss_rate=1.0))
        injector.polling_fate(100, "SW1")
        injector.polling_fate(250, "SW2")
        log = injector.incident_log()
        assert log[0] == "t=100 polling_packet_lost @ SW1"
        assert log[1] == "t=250 polling_packet_lost @ SW2"

    def test_count_records_recovery_events(self):
        injector = FaultInjector(FaultPlan.lossy(0.1))
        injector.count("polling_retransmitted", "flow", 500, "attempt=1")
        assert injector.stats["polling_retransmitted"] == 1
        assert injector.incident_log() == [
            "t=500 polling_retransmitted @ flow (attempt=1)"
        ]

    def test_incident_describe(self):
        plain = FaultIncident(10, "report_lost", "SW3")
        assert plain.describe() == "t=10 report_lost @ SW3"
        detailed = FaultIncident(10, "report_delayed", "SW3", "delay=5ns")
        assert detailed.describe() == "t=10 report_delayed @ SW3 (delay=5ns)"
