"""End-to-end reliability: differential byte-identity, determinism,
retry/backoff recovery and graceful degradation under injected faults."""

import pytest

from repro.experiments.runner import RunConfig, run_scenario
from repro.faults import FaultPlan, RetryPolicy
from repro.telemetry.snapshot import SwitchReport
from repro.units import usec
from repro.workloads import SCENARIO_BUILDERS


def run(scenario_name, seed=1, **config_kwargs):
    scenario = SCENARIO_BUILDERS[scenario_name](seed=seed)
    return scenario, run_scenario(scenario, RunConfig(**config_kwargs))


class TestDifferential:
    """A zero-fault plan must be indistinguishable from no plan at all."""

    @pytest.mark.parametrize(
        "name", ["incast-backpressure", "normal-contention"]
    )
    def test_noop_plan_byte_identical(self, name):
        _, clean = run(name)
        _, noop = run(name, faults=FaultPlan(seed=1))
        assert noop.fault_counters == {}
        assert noop.fault_incidents == []
        assert clean.events_run == noop.events_run
        assert clean.diagnosis().describe() == noop.diagnosis().describe()

    def test_clean_run_full_confidence(self):
        _, result = run("incast-backpressure")
        diagnosis = result.diagnosis()
        assert diagnosis.confidence == "full"
        assert diagnosis.completeness == 1.0
        assert diagnosis.missing_switches == []
        assert diagnosis.degraded_reports == []
        assert "confidence" not in diagnosis.describe()


class TestDeterminism:
    def test_same_seed_same_incident_log(self):
        kwargs = dict(faults=FaultPlan.lossy(0.2), retry=RetryPolicy())
        _, a = run("incast-backpressure", **kwargs)
        _, b = run("incast-backpressure", **kwargs)
        assert a.fault_incidents == b.fault_incidents
        assert a.fault_counters == b.fault_counters
        assert a.diagnosis().describe() == b.diagnosis().describe()

    def test_different_fault_seed_different_incidents(self):
        _, a = run("incast-backpressure", faults=FaultPlan.lossy(0.2, seed=1))
        _, b = run("incast-backpressure", faults=FaultPlan.lossy(0.2, seed=2))
        assert a.fault_incidents != b.fault_incidents


class TestRetryRecovery:
    def test_retransmission_recovers_lossy_control_path(self):
        scenario, result = run(
            "incast-backpressure",
            faults=FaultPlan.lossy(0.1),
            retry=RetryPolicy(),
        )
        diagnosis = result.diagnosis()
        assert diagnosis is not None
        assert diagnosis.anomaly.value == scenario.truth.anomaly.value
        assert diagnosis.confidence == "full"

    def test_no_retries_degrades_but_never_lies(self):
        scenario, result = run(
            "incast-backpressure", faults=FaultPlan.lossy(0.1)
        )
        assert sum(result.fault_counters.values()) > 0
        diagnosis = result.diagnosis()
        if diagnosis is not None and (
            diagnosis.anomaly.value != scenario.truth.anomaly.value
        ):
            assert diagnosis.confidence == "degraded"

    def test_retries_bounded(self):
        retry = RetryPolicy(max_retries=2)
        _, result = run(
            "incast-backpressure",
            faults=FaultPlan(seed=1, polling_loss_rate=1.0),
            retry=retry,
        )
        # Every trigger's polling trace dies at the first hop, so every
        # retry fires and exhausts: retransmissions stay within budget.
        retransmitted = result.fault_counters.get("agent_retransmissions", 0)
        exhausted = result.fault_counters.get("agent_retries_exhausted", 0)
        assert exhausted > 0
        assert retransmitted <= retry.max_retries * exhausted


class TestDmaFaults:
    def test_total_dma_failure_abandons_within_budget(self):
        _, result = run(
            "normal-contention",
            faults=FaultPlan(seed=1, dma_failure_rate=1.0),
            retry=RetryPolicy(dma_retry_budget=2),
        )
        counters = result.fault_counters
        assert counters.get("dma_retries", 0) > 0
        assert counters.get("dma_reads_abandoned", 0) > 0
        assert counters["dma_retries"] == 2 * counters["dma_reads_abandoned"]
        diagnosis = result.diagnosis()
        assert diagnosis is None or diagnosis.confidence == "degraded"

    def test_partial_dma_failure_recovered_by_retry(self):
        scenario, result = run(
            "incast-backpressure",
            faults=FaultPlan(seed=1, dma_failure_rate=0.3),
            retry=RetryPolicy(),
        )
        assert result.fault_counters.get("dma_retries", 0) > 0
        diagnosis = result.diagnosis()
        assert diagnosis.anomaly.value == scenario.truth.anomaly.value

    def test_stale_reads_flagged_and_degrade_confidence(self):
        _, result = run(
            "incast-backpressure",
            faults=FaultPlan(seed=1, dma_stale_rate=1.0),
        )
        assert result.fault_counters.get("stale_reads", 0) > 0
        diagnosis = result.diagnosis()
        assert diagnosis.confidence == "degraded"
        assert any("stale" in entry for entry in diagnosis.degraded_reports)
        assert "confidence: degraded" in diagnosis.describe()


class TestReportChannelFaults:
    def test_truncation_flagged(self):
        _, result = run(
            "incast-backpressure",
            faults=FaultPlan(seed=1, report_truncate_rate=1.0),
        )
        assert result.fault_counters.get("reports_truncated", 0) > 0
        diagnosis = result.diagnosis()
        assert any("truncated" in e for e in diagnosis.degraded_reports)

    def test_delayed_reports_still_delivered(self):
        _, result = run(
            "incast-backpressure",
            faults=FaultPlan(
                seed=1, report_delay_rate=1.0, report_delay_max_ns=usec(100)
            ),
        )
        assert result.fault_counters.get("reports_delayed", 0) > 0
        assert result.collections > 0
        assert result.diagnosis() is not None

    def test_clock_skew_flags_reports(self):
        _, result = run(
            "incast-backpressure",
            faults=FaultPlan(seed=1, clock_skew_max_ns=usec(50)),
        )
        assert result.fault_counters.get("clock_skewed", 0) > 0
        diagnosis = result.diagnosis()
        assert any("skewed" in e for e in diagnosis.degraded_reports)


class TestAgentRestart:
    def test_restarts_counted_and_survived(self):
        _, result = run(
            "incast-backpressure",
            faults=FaultPlan(
                seed=1, agent_restart_rate=0.2,
                agent_restart_blackout_ns=usec(100),
            ),
        )
        assert result.fault_counters.get("agent_restarts", 0) > 0
        assert result.fault_counters["agent_restarts"] == (
            result.fault_counters.get("agent_restarted", 0)
        )


class TestFaultFlagsSurvivePlumbing:
    def test_columnar_round_trip_preserves_faults(self):
        report = SwitchReport(switch="SW1", collect_time=123)
        report.faults = ("stale", "truncated")
        restored = SwitchReport.from_columnar(report.to_columnar())
        assert restored.faults == ("stale", "truncated")

    def test_visibility_transforms_preserve_faults(self):
        from repro.baselines.transforms import (
            strip_flow_telemetry,
            strip_pfc_visibility,
            strip_port_causality,
        )

        report = SwitchReport(switch="SW1", collect_time=123)
        report.faults = ("stale",)
        for transform in (
            strip_flow_telemetry, strip_port_causality, strip_pfc_visibility
        ):
            assert transform(report).faults == ("stale",)
