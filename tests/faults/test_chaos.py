"""Chaos harness acceptance gates.

The two hard robustness contracts (ISSUE acceptance criteria):

- at <=10% control-path loss *with retries*, every anomaly class is still
  diagnosed correctly;
- at higher loss the pipeline never crashes and never emits a wrong
  verdict at full confidence.
"""

from repro.faults import (
    CHAOS_SCENARIOS,
    ChaosOutcome,
    FaultPlan,
    RetryPolicy,
    chaos_sweep,
    run_chaos_cell,
    summarize,
)


class TestAcceptanceWithRetries:
    def test_all_classes_correct_at_ten_percent_loss(self):
        outcomes = chaos_sweep(loss_rates=(0.10,), seed=1, retry=RetryPolicy())
        assert len(outcomes) == len(CHAOS_SCENARIOS)
        for o in outcomes:
            assert not o.crashed, f"{o.scenario} crashed:\n{o.error}"
            assert o.correct, (
                f"{o.scenario} wrong at 10% loss with retries "
                f"(diagnosed={o.diagnosed}, confidence={o.confidence})"
            )


class TestHighLossNeverLies:
    def test_no_crash_no_wrong_full_confidence(self):
        outcomes = chaos_sweep(loss_rates=(0.3,), seed=1, retry=None)
        tally = summarize(outcomes)
        assert tally["crashed"] == 0
        assert tally["wrong_full_confidence"] == 0

    def test_extra_faults_on_top_of_loss(self):
        outcomes = chaos_sweep(
            scenarios=("incast-backpressure", "normal-contention"),
            loss_rates=(0.2,),
            retry=RetryPolicy(),
            extra_plan_kwargs={
                "dma_failure_rate": 0.2,
                "report_truncate_rate": 0.1,
            },
        )
        for o in outcomes:
            assert not o.crashed
            assert not o.wrong_full_confidence


class TestHarnessMechanics:
    def test_cell_never_raises_even_on_bad_scenario(self):
        outcome = run_chaos_cell(
            "no-such-scenario", FaultPlan.lossy(0.1), RetryPolicy(), 0.1
        )
        assert outcome.crashed
        assert "no-such-scenario" in outcome.error

    def test_cell_records_incident_log(self):
        outcome = run_chaos_cell(
            "incast-backpressure", FaultPlan.lossy(0.2), RetryPolicy(), 0.2
        )
        assert not outcome.crashed
        assert outcome.incident_log
        assert sum(outcome.fault_counters.values()) > 0

    def test_cell_deterministic(self):
        plan = FaultPlan.lossy(0.2)
        a = run_chaos_cell("incast-backpressure", plan, RetryPolicy(), 0.2)
        b = run_chaos_cell("incast-backpressure", plan, RetryPolicy(), 0.2)
        assert a.incident_log == b.incident_log
        assert a.fault_counters == b.fault_counters
        assert a.diagnosed == b.diagnosed

    def test_wrong_full_confidence_property(self):
        wrong = ChaosOutcome(
            scenario="s", loss_rate=0.1, seed=1,
            diagnosed="pfc_storm", correct=False, confidence="full",
        )
        assert wrong.wrong_full_confidence
        degraded = ChaosOutcome(
            scenario="s", loss_rate=0.1, seed=1,
            diagnosed="pfc_storm", correct=False, confidence="degraded",
        )
        assert not degraded.wrong_full_confidence
        crashed = ChaosOutcome(
            scenario="s", loss_rate=0.1, seed=1, error="boom",
        )
        assert not crashed.wrong_full_confidence

    def test_summarize_tallies(self):
        outcomes = [
            ChaosOutcome("a", 0.1, 1, diagnosed="x", correct=True),
            ChaosOutcome("b", 0.1, 1, diagnosed="x", correct=False,
                         confidence="degraded"),
            ChaosOutcome("c", 0.1, 1),
            ChaosOutcome("d", 0.1, 1, error="boom"),
        ]
        tally = summarize(outcomes)
        assert tally == {
            "cells": 4,
            "correct": 1,
            "degraded": 1,
            "no_verdict": 1,
            "crashed": 1,
            "wrong_full_confidence": 0,
        }
